"""Append-only JSONL journal of monitor events, with crash recovery.

The store is deliberately primitive: one :class:`~repro.monitor.stream.MonitorEvent`
per line, appended in emission order, never rewritten.  That buys the
two properties the monitoring service needs:

* **Durability without coordination** -- a supervisor crash loses at
  most the unflushed tail; a torn final line (killed mid-write) is
  detected and ignored on read.
* **Replayability** -- released samples are journaled as ``"sample"``
  events, so :meth:`EventStore.samples` can re-feed a fresh
  :class:`~repro.monitor.stream.StreamState` and regenerate the exact
  verdict-transition sequence.  The conformance suite asserts the
  regenerated transitions are identical to the journaled ones; the
  supervisor uses the same path to warm-start after a restart
  (*backfill*), then continues with live data.
"""

from __future__ import annotations

import json
import os
from typing import Any, Iterator

from .stream import MonitorEvent

__all__ = ["EventStore", "TRANSITION_KINDS"]

#: Event kinds that constitute the verdict-transition record of a
#: stream (everything except the high-volume ``"sample"`` journal).
TRANSITION_KINDS = frozenset({"start", "verdict", "episode", "decision", "closed"})


class EventStore:
    """Append-only JSONL store for monitor events.

    Parameters
    ----------
    path:
        Journal file; created (with parents) if missing, appended to if
        present.
    flush_every:
        fsync-less flush cadence in events; ``1`` (default) flushes on
        every append, larger values trade durability for throughput.

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, path: str | os.PathLike, flush_every: int = 1):
        self.path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self.flush_every = max(1, int(flush_every))
        self._fh = open(self.path, "a", encoding="utf-8")
        self._since_flush = 0
        self.appended = 0

    # ------------------------------------------------------------------
    def append(self, event: MonitorEvent) -> None:
        """Append one event to the journal."""
        if self._fh is None:
            raise ValueError("store is closed")
        self._fh.write(json.dumps(event.to_dict(), separators=(",", ":")) + "\n")
        self.appended += 1
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self._fh.flush()
            self._since_flush = 0

    def append_many(self, events: Iterator[MonitorEvent] | list[MonitorEvent]) -> None:
        """Append a batch of events."""
        for ev in events:
            self.append(ev)

    def flush(self) -> None:
        """Flush buffered writes to the OS."""
        if self._fh is not None:
            self._fh.flush()
            self._since_flush = 0

    def close(self) -> None:
        """Flush and close the journal (idempotent)."""
        if self._fh is not None:
            self._fh.flush()
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "EventStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def replay(self, stream: str | None = None,
               kinds: frozenset[str] | None = None) -> Iterator[MonitorEvent]:
        """Iterate journaled events in append order.

        Filters by ``stream`` id and/or event ``kinds`` when given.  A
        torn final line (from a crash mid-append) is skipped; a corrupt
        line *elsewhere* raises ``ValueError``, since that indicates
        real damage rather than an interrupted write.
        """
        self.flush()
        if not os.path.exists(self.path):
            return
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                d = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    return  # torn tail from a crash: recoverable
                raise ValueError(f"{self.path}: corrupt journal line {i + 1}")
            ev = MonitorEvent.from_dict(d)
            if stream is not None and ev.stream != stream:
                continue
            if kinds is not None and ev.kind not in kinds:
                continue
            yield ev

    def streams(self) -> list[str]:
        """Distinct stream ids present in the journal, in first-seen order."""
        seen: dict[str, None] = {}
        for ev in self.replay():
            seen.setdefault(ev.stream, None)
        return list(seen)

    def transitions(self, stream: str | None = None) -> list[MonitorEvent]:
        """The verdict-transition record (everything but ``"sample"``)."""
        return list(self.replay(stream=stream, kinds=TRANSITION_KINDS))

    def samples(self, stream: str) -> Iterator[tuple[float, dict, dict | None]]:
        """The released samples of one stream, in release (time) order.

        Yields ``(t, values, derivs)`` triples ready to re-feed through
        :meth:`~repro.monitor.stream.StreamState.push` for backfill.
        """
        for ev in self.replay(stream=stream, kinds=frozenset({"sample"})):
            yield ev.time, ev.payload["values"], ev.payload.get("derivs")
