"""Online streaming verification (ROADMAP item: monitoring service).

Everything the batch SMC stack evaluates over complete trajectories --
BLTL verdicts (:func:`repro.smc.bltl.monitor`), robustness margins
(:func:`repro.smc.bltl.robustness`), sequential hypothesis tests
(:func:`repro.smc.stats.sprt`) -- this package evaluates
**incrementally** over streaming time-series, one sample at a time,
never holding a full trajectory:

* :mod:`~repro.monitor.automaton` -- the per-formula online monitor:
  three-valued verdicts with sound early termination, exact batch
  conformance at horizon completion, running robustness bounds.
* :mod:`~repro.monitor.stream` -- per-stream state: out-of-order
  admission, episode rollover, the incremental per-stream SPRT.
* :mod:`~repro.monitor.supervisor` -- the fleet supervisor: thousands
  of streams in one process, event fan-out, progress/cancellation,
  vectorized predicate batching via the interval tape evaluator.
* :mod:`~repro.monitor.store` -- append-only JSONL journal with
  replay/backfill recovery.
* :mod:`~repro.monitor.sources` -- replay, CSV/JSONL tailing, and
  synthetic catalog-scenario fleets.
* :mod:`~repro.monitor.tui` -- ``repro watch``: Textual dashboard with
  a plain-ticker fallback.
"""

from .automaton import MonitorResult, OnlineMonitor, Verdict
from .sources import replay_source, scenario_property, stream_scenario, tail_source
from .store import EventStore
from .stream import MonitorEvent, StreamState
from .supervisor import FleetSupervisor
from .tui import HAS_TEXTUAL, plain_watch, watch

__all__ = [
    "Verdict",
    "MonitorResult",
    "OnlineMonitor",
    "MonitorEvent",
    "StreamState",
    "FleetSupervisor",
    "EventStore",
    "replay_source",
    "tail_source",
    "scenario_property",
    "stream_scenario",
    "HAS_TEXTUAL",
    "watch",
    "plain_watch",
]
