"""Live fleet views: a Textual dashboard with a plain-ticker fallback.

``repro watch`` renders a :class:`~repro.monitor.supervisor.FleetSupervisor`
while a source feeds it.  Two modes:

* **Textual DataTable** (when the optional ``textual`` dependency is
  installed -- ``pip install repro[monitor]``): one row per stream
  showing episode, live three-valued verdict, running robustness
  bounds, SPRT status and sample counters, refreshed on a timer while
  a worker thread drains the source.
* **Plain ticker** (always available, and the only mode in headless
  environments): verdict transitions are printed as one-line records
  as they happen, with periodic fleet-summary lines.

Both modes return the final fleet summary dict, so the CLI can render
a closing report regardless of frontend.
"""

from __future__ import annotations

import math
import sys
import time
from typing import Any, Callable, Iterable, TextIO

from .stream import MonitorEvent
from .supervisor import FleetSupervisor

__all__ = ["HAS_TEXTUAL", "watch", "plain_watch"]

try:  # pragma: no cover - exercised only where textual is installed
    from textual.app import App  # noqa: F401

    HAS_TEXTUAL = True
except ImportError:  # textual is an optional [monitor] extra
    HAS_TEXTUAL = False


def _fmt_margin(lo: float, hi: float) -> str:
    def one(x: float) -> str:
        return f"{x:.3g}" if math.isfinite(x) else ("-inf" if x < 0 else "inf")

    if lo == hi:
        return one(lo)
    return f"[{one(lo)}, {one(hi)}]"


def _drive(supervisor: FleetSupervisor, source: Iterable | Callable[[], Any]) -> None:
    """Run a source through the supervisor.

    ``source`` is either an iterable of samples/batches (drained via
    :meth:`FleetSupervisor.run`) or a zero-argument driver callable
    that feeds the supervisor itself (e.g. a bound
    :func:`~repro.monitor.sources.stream_scenario`).
    """
    if callable(source):
        source()
    else:
        supervisor.run(source)
    supervisor.close_all()


def plain_watch(
    supervisor: FleetSupervisor,
    source: Iterable | Callable[[], Any],
    out: TextIO | None = None,
    summary_every: float = 2.0,
    quiet: bool = False,
) -> dict[str, int]:
    """Drive ``source`` through the supervisor, printing a ticker.

    ``source`` is an iterable of samples or a zero-argument driver (see
    :func:`_drive`).  Verdict transitions print as they happen
    (suppressed when ``quiet``); a fleet summary line prints at most
    every ``summary_every`` seconds and once at the end.  Returns the
    final summary.
    """
    out = out if out is not None else sys.stdout
    last_summary = [0.0]
    prev_subscriber = supervisor.on_event

    def ticker(ev: MonitorEvent) -> None:
        if prev_subscriber is not None:
            prev_subscriber(ev)
        if not quiet and ev.kind in ("verdict", "episode", "decision"):
            print(ev.describe(), file=out)
        now = time.monotonic()
        if now - last_summary[0] >= summary_every:
            last_summary[0] = now
            s = supervisor.summary()
            print(
                f"-- fleet: {s['active']}/{s['streams']} active, "
                f"{s['true']} true / {s['false']} false / {s['unknown']} unknown, "
                f"{s['episodes']} episodes, {s['samples']} samples",
                file=out,
            )

    supervisor.on_event = ticker
    try:
        _drive(supervisor, source)
    finally:
        supervisor.on_event = prev_subscriber
    summary = supervisor.summary()
    print(
        f"== done: {summary['streams']} streams, {summary['episodes']} episodes, "
        f"{summary['true']} true / {summary['false']} false / "
        f"{summary['unknown']} unknown, {summary['late_dropped']} late-dropped",
        file=out,
    )
    return summary


def watch(
    supervisor: FleetSupervisor,
    source: Iterable | Callable[[], Any],
    plain: bool = False,
    refresh: float = 0.5,
    out: TextIO | None = None,
) -> dict[str, int]:
    """Watch the fleet with the richest available frontend.

    Uses the Textual dashboard when installed and not ``plain``;
    otherwise falls back to :func:`plain_watch`.
    """
    if plain or not HAS_TEXTUAL:
        return plain_watch(supervisor, source, out=out)
    return _textual_watch(supervisor, source, refresh)


def _textual_watch(  # pragma: no cover - needs the optional textual extra
    supervisor: FleetSupervisor, source: Iterable | Callable[[], Any], refresh: float
) -> dict[str, int]:
    import threading

    from textual.app import App, ComposeResult
    from textual.widgets import DataTable, Footer, Header

    class WatchApp(App):
        """One DataTable row per monitored stream, timer-refreshed."""

        TITLE = "repro watch"
        BINDINGS = [("q", "quit", "Quit")]

        def compose(self) -> ComposeResult:
            yield Header(show_clock=True)
            yield DataTable(zebra_stripes=True)
            yield Footer()

        def on_mount(self) -> None:
            table = self.query_one(DataTable)
            table.cursor_type = "row"
            table.add_columns(
                "stream", "episode", "verdict", "margin", "sprt",
                "samples", "late",
            )
            self._worker = threading.Thread(target=self._drain, daemon=True)
            self._worker.start()
            self.set_interval(refresh, self._refresh_rows)

        def _drain(self) -> None:
            try:
                _drive(supervisor, source)
            finally:
                self.call_from_thread(self._refresh_rows)

        def _refresh_rows(self) -> None:
            table = self.query_one(DataTable)
            table.clear()
            for sid, s in sorted(supervisor.streams.items()):
                lo, hi = s.margin_interval()
                table.add_row(
                    sid,
                    str(max(s.episode, 0)),
                    str(s.verdict),
                    _fmt_margin(lo, hi),
                    s.sprt.describe() if s.sprt is not None else "-",
                    str(s.samples_seen),
                    str(s.late_dropped),
                    key=sid,
                )
            s = supervisor.summary()
            self.sub_title = (
                f"{s['active']}/{s['streams']} active | "
                f"{s['true']}T {s['false']}F {s['unknown']}U | "
                f"{s['episodes']} episodes"
            )

    app: Any = WatchApp()
    app.run()
    return supervisor.summary()
