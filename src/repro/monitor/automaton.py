"""Online (streaming) BLTL monitors with three-valued verdicts.

The batch monitor (:func:`repro.smc.bltl.monitor`) needs the whole
trajectory up front.  This module compiles the same
:class:`~repro.smc.bltl.BLTL` formulas into **online monitors** that
consume one sample at a time and

* report a per-step three-valued verdict (:class:`Verdict`:
  ``TRUE`` / ``FALSE`` / ``UNKNOWN``) that flips to a decided value the
  instant it becomes *irrevocable* -- e.g. ``G(T, phi)`` fails the
  moment any in-window sample falsifies ``phi``, long before the window
  closes -- so a fleet supervisor can stop paying for a stream early;
* track a running robustness interval (:meth:`OnlineMonitor.margin_interval`)
  that tightens as windows fill, collapsing to the exact batch
  robustness when the horizon completes;
* never hold more than one formula-horizon of samples (the episode
  ring), so per-sample cost is independent of how long the stream has
  been running.

Conformance contract
--------------------
The online monitor is *exactly* conformant with the batch semantics: on
a stream that replays a trajectory's samples (with its derivative rows,
when present, so dense output interpolates identically), the final
verdict equals :func:`repro.smc.bltl.monitor` and the final margin
equals :func:`repro.smc.bltl.robustness` -- bit for bit.  This holds by
construction: window discretization is shared
(:func:`repro.smc.bltl.window_times`), and the moment a (sub)window's
horizon is covered by the watermark its value is computed by the batch
recursion over the buffered prefix.  Early (pre-horizon) decisions use
only samples that are guaranteed to appear in the final window instant
sets, so they are *sound*: a decided verdict never changes when more
samples arrive (the monitor raises ``RuntimeError`` if it ever would --
that is a bug, not a condition to handle).

Early-decision machinery
------------------------
Each temporal node keeps one incremental scan state per pending window
anchored at instant ``u``: a monotone frontier index into the sample
ring plus the running Kleene aggregate, so ``G``/``F`` window checks
are O(1) amortized per sample (the frontier only moves forward) and
``U`` windows run the classic until-automaton over the determined
instant prefix.  Undecided subformula values (windows whose own horizon
is still open) propagate as ``UNKNOWN`` and are revisited when the
watermark reaches them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.logic import Formula
from repro.odes import Trajectory
from repro.smc.bltl import (
    WINDOW_EPS,
    AndOp,
    At,
    BLTL,
    Always,
    Eventually,
    NotOp,
    OrOp,
    Prop,
    Until,
    _as_bltl,
    _rob,
    _sat,
)

__all__ = ["Verdict", "MonitorResult", "OnlineMonitor"]

_INF = float("inf")

#: Horizon slack inherited from the batch monitor: a stream whose last
#: sample falls within this tolerance of the formula horizon still
#: finalizes exactly (window endpoints clamp to the sampled span).
HORIZON_SLACK = 1e-9


class Verdict(enum.Enum):
    """Three-valued satisfaction state of a monitored property."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    @property
    def decided(self) -> bool:
        """Whether the verdict is irrevocably TRUE or FALSE."""
        return self is not Verdict.UNKNOWN

    @classmethod
    def of(cls, sat: bool) -> "Verdict":
        """The decided verdict for a boolean satisfaction value."""
        return cls.TRUE if sat else cls.FALSE

    def __str__(self) -> str:  # noqa: D105
        return self.value


def _k_not(v: Verdict) -> Verdict:
    if v is Verdict.TRUE:
        return Verdict.FALSE
    if v is Verdict.FALSE:
        return Verdict.TRUE
    return Verdict.UNKNOWN


def _k_and(a: Verdict, b: Verdict) -> Verdict:
    if a is Verdict.FALSE or b is Verdict.FALSE:
        return Verdict.FALSE
    if a is Verdict.TRUE and b is Verdict.TRUE:
        return Verdict.TRUE
    return Verdict.UNKNOWN


def _k_or(a: Verdict, b: Verdict) -> Verdict:
    if a is Verdict.TRUE or b is Verdict.TRUE:
        return Verdict.TRUE
    if a is Verdict.FALSE and b is Verdict.FALSE:
        return Verdict.FALSE
    return Verdict.UNKNOWN


# ----------------------------------------------------------------------
# compiled node tree
# ----------------------------------------------------------------------


class _Win:
    """Scan state of one pending F/G window anchored at instant ``u``."""

    __slots__ = ("next_idx",)

    def __init__(self, next_idx: int):
        self.next_idx = next_idx


class _UWin:
    """Scan state of one pending Until window.

    ``stage`` 0: left window endpoint not yet resolvable; 1: the exact
    endpoint instant must be evaluated (no sample covers it); 2: the
    ordered in-window sample scan.
    """

    __slots__ = ("next_idx", "stage")

    def __init__(self):
        self.next_idx = 0
        self.stage = 0


class _Node:
    """One compiled BLTL operator with its incremental window states."""

    __slots__ = ("phi", "kind", "children", "bound", "offset", "horizon",
                 "decided", "margins", "wins")

    def __init__(self, phi: BLTL, kind: str, children: list["_Node"],
                 bound: float = 0.0, offset: float = 0.0):
        self.phi = phi
        self.kind = kind
        self.children = children
        self.bound = bound
        self.offset = offset
        self.horizon = phi.horizon()
        self.decided: dict[float, Verdict] = {}
        self.margins: dict[float, float] = {}
        self.wins: dict[float, Any] = {}


def _compile(phi: BLTL) -> tuple[_Node, list[_Node]]:
    """Build the node tree; returns (root, Prop leaves in syntactic order)."""
    leaves: list[_Node] = []

    def build(p: BLTL) -> _Node:
        if isinstance(p, Prop):
            node = _Node(p, "prop", [])
            leaves.append(node)
            return node
        if isinstance(p, NotOp):
            return _Node(p, "not", [build(p.arg)])
        if isinstance(p, AndOp):
            return _Node(p, "and", [build(p.left), build(p.right)])
        if isinstance(p, OrOp):
            return _Node(p, "or", [build(p.left), build(p.right)])
        if isinstance(p, Eventually):
            return _Node(p, "F", [build(p.arg)], bound=p.bound)
        if isinstance(p, Always):
            return _Node(p, "G", [build(p.arg)], bound=p.bound)
        if isinstance(p, Until):
            return _Node(p, "U", [build(p.left), build(p.right)], bound=p.bound)
        if isinstance(p, At):
            return _Node(p, "at", [build(p.arg)], offset=p.offset)
        raise TypeError(f"cannot compile BLTL node {type(p).__name__}")

    return build(phi), leaves


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------


@dataclass
class MonitorResult:
    """Final state of one monitoring episode.

    Attributes
    ----------
    verdict:
        The three-valued outcome; ``UNKNOWN`` only when the stream
        ended before the horizon was covered *and* no early decision
        was reached.
    margin:
        The exact batch robustness margin, or ``None`` when the episode
        ended before the horizon completed.
    decided_at:
        Stream time at which the verdict became irrevocable (``None``
        if undecided).
    t_start:
        Anchor time of the episode (its first sample).
    samples:
        Samples consumed by the episode.
    complete:
        Whether the formula horizon was fully covered.
    """

    verdict: Verdict
    margin: float | None
    decided_at: float | None
    t_start: float | None
    samples: int
    complete: bool

    def to_dict(self) -> dict[str, Any]:
        """JSON-able projection."""
        return {
            "verdict": self.verdict.value,
            "margin": self.margin,
            "decided_at": self.decided_at,
            "t_start": self.t_start,
            "samples": self.samples,
            "complete": self.complete,
        }


# ----------------------------------------------------------------------
# the monitor
# ----------------------------------------------------------------------


class OnlineMonitor:
    """Incremental three-valued evaluation of one BLTL formula.

    Parameters
    ----------
    phi:
        The property (a :class:`~repro.smc.bltl.BLTL` or a bare
        :class:`~repro.logic.Formula`, which is wrapped into a ``Prop``).
    extra_env:
        Extra constant bindings visible to the state predicates, as in
        the batch monitor.

    The evaluation instant is anchored at the **first sample's time**;
    feed samples in strictly increasing time order via :meth:`step` and
    finish with :meth:`finish`.  The monitor buffers at most one
    formula horizon of samples.
    """

    def __init__(self, phi: BLTL | Formula, extra_env: Mapping[str, float] | None = None):
        self.phi = _as_bltl(phi)
        self.horizon = self.phi.horizon()
        self.extra_env = dict(extra_env or {})
        self._root, self._leaves = _compile(self.phi)
        self._names: list[str] | None = None
        self._times = np.empty(64, dtype=float)
        self._states: np.ndarray | None = None
        self._derivs: np.ndarray | None = None
        self._has_derivs = False
        self._n = 0
        self._traj: Trajectory | None = None
        self.verdict = Verdict.UNKNOWN
        self.decided_at: float | None = None
        self.final_margin: float | None = None
        self.finished = False
        self.ignored = 0

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    @property
    def n_samples(self) -> int:
        """Samples consumed so far."""
        return self._n

    @property
    def t_start(self) -> float | None:
        """The episode anchor (first sample time), or ``None`` if empty."""
        return float(self._times[0]) if self._n else None

    @property
    def watermark(self) -> float | None:
        """Latest sample time, or ``None`` before the first sample."""
        return float(self._times[self._n - 1]) if self._n else None

    @property
    def decided(self) -> bool:
        """Whether the verdict is irrevocable."""
        return self.verdict.decided

    @property
    def prop_leaves(self) -> list[Formula]:
        """The state-predicate leaves, in syntactic order.

        Index ``i`` addresses leaf ``i`` in :meth:`prime`.
        """
        return [leaf.phi.formula for leaf in self._leaves]

    # ------------------------------------------------------------------
    # feeding
    # ------------------------------------------------------------------
    def step(self, t: float, values: Mapping[str, float],
             derivs: Mapping[str, float] | None = None) -> Verdict:
        """Consume one sample; returns the current three-valued verdict.

        Samples must arrive in strictly increasing time order (the
        stream layer handles reordering).  Samples after the horizon
        completed are counted in :attr:`ignored` and change nothing.
        """
        if self.finished:
            self.ignored += 1
            return self.verdict
        t = float(t)
        if self._n and t <= self._times[self._n - 1]:
            raise ValueError(
                f"monitor samples must be strictly increasing in time: "
                f"got {t} after {self._times[self._n - 1]}"
            )
        self._append(t, values, derivs)
        t0 = float(self._times[0])
        if not self.verdict.decided:
            v = self._eval3(self._root, t0)
            if v.decided:
                self.verdict = v
                self.decided_at = t
        if t >= t0 + self.horizon:
            self._finalize()
        return self.verdict

    def finish(self) -> MonitorResult:
        """Close the episode and return its :class:`MonitorResult`.

        If the stream covered the horizon (within the batch monitor's
        ``1e-9`` slack) the exact batch verdict and margin are
        computed; otherwise the episode stays ``complete=False`` with
        whatever early verdict was reached.
        """
        if not self.finished:
            if self._n and self.watermark + HORIZON_SLACK >= self._times[0] + self.horizon:
                self._finalize()
            else:
                self.finished = True
        return MonitorResult(
            verdict=self.verdict,
            margin=self.final_margin,
            decided_at=self.decided_at,
            t_start=self.t_start,
            samples=self._n,
            complete=self.final_margin is not None,
        )

    def prime(self, t: float, verdicts: Mapping[int, Verdict]) -> None:
        """Pre-load *certain* leaf verdicts for the sample at time ``t``.

        The fleet supervisor evaluates the shared state predicates of a
        whole batch of streams in one vectorized interval pass (the
        PR 3 tape evaluator); predicates the interval judge decides
        with certainty are deposited here so the scalar early path
        skips them.  Values must agree with the exact pointwise
        evaluation -- interval certainty guarantees that.
        """
        t = float(t)
        for idx, v in verdicts.items():
            if v.decided:
                self._leaves[idx].decided.setdefault(t, v)

    # ------------------------------------------------------------------
    # margins
    # ------------------------------------------------------------------
    def margin_interval(self) -> tuple[float, float]:
        """Running robustness bounds ``(lo, hi)`` of the episode.

        The true (batch) robustness of the completed trace is
        guaranteed to lie in the interval; it tightens as windows fill
        and collapses to the exact margin once the horizon completes.
        """
        if self.final_margin is not None:
            return (self.final_margin, self.final_margin)
        if not self._n:
            return (-_INF, _INF)
        return self._m3(self._root, float(self._times[0]))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _append(self, t: float, values: Mapping[str, float],
                derivs: Mapping[str, float] | None) -> None:
        if self._names is None:
            self._names = list(values)
            self._states = np.empty((64, len(self._names)), dtype=float)
            self._has_derivs = derivs is not None
            if self._has_derivs:
                self._derivs = np.empty_like(self._states)
        if (derivs is not None) != self._has_derivs:
            raise ValueError("all samples of an episode must consistently "
                             "carry (or omit) derivative rows")
        if self._n == len(self._times):
            self._times = np.concatenate([self._times, np.empty_like(self._times)])
            self._states = np.concatenate([self._states, np.empty_like(self._states)])
            if self._derivs is not None:
                self._derivs = np.concatenate([self._derivs, np.empty_like(self._derivs)])
        try:
            row = [float(values[k]) for k in self._names]
        except KeyError as exc:
            raise ValueError(f"sample at t={t} misses variable {exc}") from None
        self._times[self._n] = t
        self._states[self._n] = row
        if self._derivs is not None:
            self._derivs[self._n] = [float(derivs[k]) for k in self._names]
        self._n += 1
        self._traj = None

    def _prefix(self) -> Trajectory:
        """The buffered episode as a dense-output trajectory (a view)."""
        if self._traj is None:
            self._traj = Trajectory(
                self._times[: self._n],
                self._states[: self._n],
                list(self._names),
                self._derivs[: self._n] if self._derivs is not None else None,
            )
        return self._traj

    def _finalize(self) -> None:
        traj = self._prefix()
        t0 = float(self._times[0])
        exact = Verdict.of(_sat(self.phi, traj, t0, dict(self.extra_env)))
        if self.verdict.decided and exact is not self.verdict:
            raise RuntimeError(
                f"online monitor early verdict {self.verdict} diverged from "
                f"the batch verdict {exact}; this is a monitor bug"
            )
        self.verdict = exact
        if self.decided_at is None:
            self.decided_at = self.watermark
        self.final_margin = float(_rob(self.phi, traj, t0, dict(self.extra_env)))
        self.finished = True

    # -- three-valued early evaluation ---------------------------------
    def _eval3(self, node: _Node, u: float) -> Verdict:
        v = node.decided.get(u)
        if v is not None:
            return v
        wm = self._times[self._n - 1]
        t0 = self._times[0]
        if u + node.horizon <= wm and u >= t0 - WINDOW_EPS:
            # horizon covered: the value is exact and irrevocable
            sat = _sat(node.phi, self._prefix(), u, dict(self.extra_env))
            v = Verdict.of(sat)
            node.decided[u] = v
            node.wins.pop(u, None)
            return v
        kind = node.kind
        if kind == "prop":
            return Verdict.UNKNOWN  # u beyond the watermark
        if kind == "not":
            return _k_not(self._eval3(node.children[0], u))
        if kind == "and":
            return _k_and(self._eval3(node.children[0], u),
                          self._eval3(node.children[1], u))
        if kind == "or":
            return _k_or(self._eval3(node.children[0], u),
                         self._eval3(node.children[1], u))
        if kind == "at":
            return self._eval3(node.children[0], u + node.offset)
        if kind in ("F", "G"):
            return self._scan_fg(node, u)
        if kind == "U":
            return self._scan_until(node, u)
        raise TypeError(kind)

    def _decide(self, node: _Node, u: float, v: Verdict) -> Verdict:
        node.decided[u] = v
        node.wins.pop(u, None)
        return v

    def _scan_fg(self, node: _Node, u: float) -> Verdict:
        """Early F/G window check over the definite in-window samples.

        Any sample time in ``[u - eps, u + bound + eps]`` is guaranteed
        to be an instant of the final window discretization, so one
        decisive child value there decides the window; the exact
        endpoint instants (inserted only when no sample covers them)
        are left to horizon completion.
        """
        target = Verdict.TRUE if node.kind == "F" else Verdict.FALSE
        win = node.wins.get(u)
        if win is None:
            start = int(np.searchsorted(self._times[: self._n], u - WINDOW_EPS))
            win = node.wins[u] = _Win(start)
        hi_lim = u + node.bound + WINDOW_EPS
        child = node.children[0]
        i = win.next_idx
        # the frontier may have been created before any in-window sample
        # existed; skip samples that arrived before the window start
        while i < self._n and self._times[i] < u - WINDOW_EPS:
            i += 1
            win.next_idx = i
        unknown_seen = False
        while i < self._n and self._times[i] <= hi_lim:
            cv = self._eval3(child, float(self._times[i]))
            if cv is target:
                return self._decide(node, u, target)
            if cv is Verdict.UNKNOWN:
                unknown_seen = True
            elif not unknown_seen:
                win.next_idx = i + 1
            i += 1
        return Verdict.UNKNOWN

    def _scan_until(self, node: _Node, u: float) -> Verdict:
        """Early Until window check: the classic until-automaton.

        Instants are processed strictly in order (the window's instant
        prefix is determined up to the watermark): a right-child success
        with an all-true left prefix decides TRUE; a left-child failure
        before any success decides FALSE; the first undecided subvalue
        stalls the scan until it resolves.
        """
        left, right = node.children
        win = node.wins.get(u)
        if win is None:
            win = node.wins[u] = _UWin()
        wm = self._times[self._n - 1]
        if win.stage == 0:
            start = int(np.searchsorted(self._times[: self._n], u - WINDOW_EPS))
            if start < self._n and self._times[start] <= u + WINDOW_EPS:
                win.next_idx = start
                win.stage = 2  # a sample stands in for the window start
            elif wm > u + WINDOW_EPS:
                win.next_idx = start
                win.stage = 1  # the exact start instant will be inserted
            else:
                return Verdict.UNKNOWN
        if win.stage == 1:
            rv = self._eval3(right, u)
            if rv is Verdict.TRUE:
                return self._decide(node, u, Verdict.TRUE)
            if rv is Verdict.UNKNOWN:
                return Verdict.UNKNOWN
            lv = self._eval3(left, u)
            if lv is Verdict.FALSE:
                return self._decide(node, u, Verdict.FALSE)
            if lv is Verdict.UNKNOWN:
                return Verdict.UNKNOWN
            win.stage = 2
        hi_lim = u + node.bound + WINDOW_EPS
        i = win.next_idx
        while i < self._n and self._times[i] <= hi_lim:
            ti = float(self._times[i])
            rv = self._eval3(right, ti)
            if rv is Verdict.TRUE:
                return self._decide(node, u, Verdict.TRUE)
            if rv is Verdict.UNKNOWN:
                return Verdict.UNKNOWN
            lv = self._eval3(left, ti)
            if lv is Verdict.FALSE:
                return self._decide(node, u, Verdict.FALSE)
            if lv is Verdict.UNKNOWN:
                return Verdict.UNKNOWN
            i += 1
            win.next_idx = i
        return Verdict.UNKNOWN

    # -- running robustness bounds -------------------------------------
    def _m3(self, node: _Node, u: float) -> tuple[float, float]:
        m = node.margins.get(u)
        if m is not None:
            return (m, m)
        wm = self._times[self._n - 1]
        t0 = self._times[0]
        if u + node.horizon <= wm and u >= t0 - WINDOW_EPS:
            m = float(_rob(node.phi, self._prefix(), u, dict(self.extra_env)))
            node.margins[u] = m
            return (m, m)
        kind = node.kind
        if kind == "prop":
            return (-_INF, _INF)
        if kind == "not":
            lo, hi = self._m3(node.children[0], u)
            return (-hi, -lo)
        if kind == "and":
            a, b = (self._m3(c, u) for c in node.children)
            return (min(a[0], b[0]), min(a[1], b[1]))
        if kind == "or":
            a, b = (self._m3(c, u) for c in node.children)
            return (max(a[0], b[0]), max(a[1], b[1]))
        if kind == "at":
            return self._m3(node.children[0], u + node.offset)
        if kind in ("F", "G"):
            child = node.children[0]
            start = int(np.searchsorted(self._times[: self._n], u - WINDOW_EPS))
            hi_lim = u + node.bound + WINDOW_EPS
            best = None
            i = start
            while i < self._n and self._times[i] <= hi_lim:
                lo, hi = self._m3(child, float(self._times[i]))
                if kind == "F":
                    best = lo if best is None else max(best, lo)
                else:
                    best = hi if best is None else min(best, hi)
                i += 1
            if kind == "F":
                # the final max is at least the best lower bound seen
                return (best if best is not None else -_INF, _INF)
            return (-_INF, best if best is not None else _INF)
        # Until: no useful running bound before completion
        return (-_INF, _INF)
