"""Per-stream state: reordering, episodes, and the incremental SPRT.

A *stream* is one source of timestamped state samples (one simulation
run, one telemetry feed, one replayed trajectory).  This module wraps
the single-episode :class:`~repro.monitor.automaton.OnlineMonitor` with
everything a long-lived feed needs:

* **Out-of-order tolerance.**  Samples are admitted through a bounded
  reorder buffer: a sample is released to the monitor only once the
  stream's *watermark* (newest time seen minus ``reorder_window``)
  passes it, so samples arriving up to ``reorder_window`` time units
  late are transparently re-sorted.  Samples older than the watermark
  at arrival are dropped and counted (:attr:`StreamState.late_dropped`)
  -- never silently.
* **Episodes.**  Each completed monitoring pass over one formula
  horizon is an *episode*; when it ends, a fresh monitor starts at the
  next released sample.  With ``early_stop`` (default) an episode ends
  the moment its verdict is irrevocable, without waiting out the
  horizon.
* **Sequential testing.**  Each episode's boolean verdict is one
  Bernoulli observation fed to an incremental
  :class:`~repro.smc.stats.SPRTState` testing ``P(phi) >= theta``; the
  stream reaches a hypothesis decision without ever buffering episode
  outcomes.

Every observable state change is returned as a :class:`MonitorEvent`
(and mirrored to an optional event store), which is what the fleet
supervisor multiplexes and the ``repro watch`` TUI renders.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.logic import Formula
from repro.smc.bltl import BLTL
from repro.smc.stats import SPRTState

from .automaton import MonitorResult, OnlineMonitor, Verdict

__all__ = ["MonitorEvent", "StreamState"]


@dataclass
class MonitorEvent:
    """One observable state change of a monitored stream.

    Attributes
    ----------
    kind:
        ``"start"`` (episode anchored), ``"verdict"`` (three-valued
        verdict flip), ``"episode"`` (episode finished; payload holds
        the :class:`~repro.monitor.automaton.MonitorResult` dict),
        ``"decision"`` (stream-level SPRT concluded), ``"closed"``
        (stream shut down), or ``"sample"`` (a released sample --
        recorded only when a store journals for replay).
    stream:
        The emitting stream's id.
    time:
        Stream time of the change (sample time that triggered it).
    episode:
        Episode index (0-based) the event belongs to.
    verdict:
        Three-valued verdict string for ``"verdict"``/``"episode"``
        events, ``"H0"``/``"H1"`` for ``"decision"`` events.
    payload:
        Kind-specific extras (result dicts, sample rows, counters).
    seq:
        Per-stream sequence number, assigned on emission.
    """

    kind: str
    stream: str
    time: float
    episode: int
    verdict: str = ""
    payload: dict[str, Any] = field(default_factory=dict)
    seq: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-able projection (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "stream": self.stream,
            "time": self.time,
            "episode": self.episode,
            "verdict": self.verdict,
            "payload": self.payload,
            "seq": self.seq,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "MonitorEvent":
        """Rebuild an event from its :meth:`to_dict` projection."""
        return cls(
            kind=d["kind"],
            stream=d["stream"],
            time=float(d["time"]),
            episode=int(d["episode"]),
            verdict=d.get("verdict", ""),
            payload=dict(d.get("payload", {})),
            seq=int(d.get("seq", 0)),
        )

    def describe(self) -> str:
        """One-line human-readable rendering for the plain ticker."""
        text = f"[{self.stream}] t={self.time:.4g} ep{self.episode} {self.kind}"
        if self.verdict:
            text += f" -> {self.verdict}"
        if self.kind == "episode" and self.payload.get("margin") is not None:
            text += f" (margin {self.payload['margin']:.4g})"
        return text


class StreamState:
    """Monitoring state of one sample stream.

    Parameters
    ----------
    stream_id:
        Identifier used in events and the store journal.
    phi:
        The monitored property (BLTL or bare predicate).
    extra_env:
        Constant bindings visible to the state predicates.
    theta:
        When given, episode verdicts feed an SPRT for
        ``P(phi) >= theta`` with bounds ``alpha``/``beta`` and the
        given ``indifference`` half-width; the stream is *done* when
        the test concludes.
    max_episodes:
        Optional episode budget; when reached the stream is done (and
        an undecided SPRT concludes best-effort).
    reorder_window:
        Lateness tolerance in stream-time units (see module docs).
    early_stop:
        End an episode at its first irrevocable verdict instead of
        waiting out the horizon (the episode is then ``complete=False``
        and carries no exact margin).
    """

    def __init__(
        self,
        stream_id: str,
        phi: BLTL | Formula,
        *,
        extra_env: Mapping[str, float] | None = None,
        theta: float | None = None,
        alpha: float = 0.05,
        beta: float = 0.05,
        indifference: float = 0.05,
        max_episodes: int | None = None,
        reorder_window: float = 0.0,
        early_stop: bool = True,
    ):
        self.stream_id = str(stream_id)
        self.phi = phi
        self.extra_env = dict(extra_env or {})
        self.reorder_window = float(reorder_window)
        self.early_stop = bool(early_stop)
        self.max_episodes = max_episodes
        self.sprt: SPRTState | None = (
            SPRTState(theta, alpha, beta, indifference) if theta is not None else None
        )
        self.monitor: OnlineMonitor | None = None
        self.episode = -1  # index of the episode in progress
        self.episodes_done = 0
        self.last_result: MonitorResult | None = None
        self.samples_seen = 0
        self.late_dropped = 0
        self.ignored_done = 0  # samples arriving after the stream was done
        self.closed = False
        self.done = False
        self._pending: list[tuple[float, int, dict, dict | None]] = []
        self._push_seq = 0  # tie-break for equal pending times
        self._released_to = -math.inf
        self._event_seq = 0

    # ------------------------------------------------------------------
    @property
    def verdict(self) -> Verdict:
        """Verdict of the episode in progress (last result when idle)."""
        if self.monitor is not None:
            return self.monitor.verdict
        if self.last_result is not None:
            return self.last_result.verdict
        return Verdict.UNKNOWN

    @property
    def pending(self) -> int:
        """Samples waiting in the reorder buffer."""
        return len(self._pending)

    @property
    def released_to(self) -> float:
        """High-water mark of released sample times (``-inf`` if none).

        Sources that resume a stream (e.g. after a journal restore)
        must feed times beyond this mark; anything at or below it is
        dropped as late.
        """
        return self._released_to

    def margin_interval(self) -> tuple[float, float]:
        """Robustness bounds of the episode in progress."""
        if self.monitor is not None:
            return self.monitor.margin_interval()
        if self.last_result is not None and self.last_result.margin is not None:
            return (self.last_result.margin, self.last_result.margin)
        return (-math.inf, math.inf)

    def describe(self) -> str:
        """Short status string for tables."""
        sprt = f" sprt={self.sprt.describe()}" if self.sprt is not None else ""
        return (
            f"{self.stream_id}: ep{max(self.episode, 0)} "
            f"{self.verdict}{sprt} n={self.samples_seen}"
        )

    # ------------------------------------------------------------------
    def push(self, t: float, values: Mapping[str, float],
             derivs: Mapping[str, float] | None = None,
             primed: Mapping[int, Verdict] | None = None) -> list[MonitorEvent]:
        """Admit one sample; returns the events it released.

        Samples may arrive out of order within ``reorder_window``.
        ``primed`` carries pre-computed certain leaf verdicts from the
        supervisor's batched predicate pass; they travel with the
        sample through the reorder buffer and are deposited into
        whichever episode monitor the sample is eventually fed to.
        Samples pushed into a closed or done stream are counted in
        :attr:`ignored_done` and dropped (a fleet must survive
        stragglers arriving after shutdown).
        """
        if self.closed:
            self.ignored_done += 1
            return []
        t = float(t)
        self.samples_seen += 1
        if self.done:
            self.ignored_done += 1
            return []
        if t <= self._released_to:
            self.late_dropped += 1
            return []
        heapq.heappush(
            self._pending,
            (t, self._push_seq, dict(values), dict(derivs) if derivs else None,
             dict(primed) if primed else None),
        )
        self._push_seq += 1
        return self._release(t - self.reorder_window)

    def advance_watermark(self, t: float) -> list[MonitorEvent]:
        """Release all buffered samples at or before time ``t``.

        Sources emit this as *punctuation* -- e.g. when a replay or tail
        source reaches end-of-file -- so reorder-buffered samples are
        not held back waiting for data that will never come.
        """
        return self._release(float(t))

    def end_episode(self) -> list[MonitorEvent]:
        """Punctuate an episode boundary: flush and close the episode.

        Sources call this when their underlying trajectory ends, so an
        episode whose horizon the data never covered finishes as a
        partial (``complete=False``) result instead of silently
        absorbing the next trajectory's samples.  A no-op when no
        episode is in progress.
        """
        events = self._release(math.inf)
        if self.monitor is not None:
            events.extend(self._finish_episode())
        return events

    def close(self) -> list[MonitorEvent]:
        """Flush the reorder buffer, end the episode, conclude the SPRT."""
        if self.closed:
            return []
        events = self._release(math.inf)
        if self.monitor is not None:
            events.extend(self._finish_episode())
        if self.sprt is not None and not self.sprt.decided and self.sprt.samples:
            result = self.sprt.conclude()
            events.append(self._event(
                "decision", self._released_to, verdict=result.decision,
                payload={"samples": result.samples_used,
                         "successes": result.successes, "forced": True},
            ))
        self.closed = True
        self.done = True
        events.append(self._event("closed", self._released_to, payload={
            "episodes": self.episodes_done,
            "samples": self.samples_seen,
            "late_dropped": self.late_dropped,
        }))
        return events

    # ------------------------------------------------------------------
    def _release(self, up_to: float) -> list[MonitorEvent]:
        events: list[MonitorEvent] = []
        while self._pending and self._pending[0][0] <= up_to:
            t, _, values, derivs, primed = heapq.heappop(self._pending)
            if self.done:
                self.ignored_done += 1
                continue
            if t <= self._released_to:
                self.late_dropped += 1
                continue
            self._released_to = t
            events.extend(self._feed(t, values, derivs, primed))
        return events

    def _feed(self, t: float, values: dict, derivs: dict | None,
              primed: dict | None = None) -> list[MonitorEvent]:
        events: list[MonitorEvent] = []
        if self.monitor is None:
            self.episode += 1
            self.monitor = OnlineMonitor(self.phi, extra_env=self.extra_env)
            events.append(self._event("start", t))
        events.append(self._event("sample", t, payload={
            "values": values, **({"derivs": derivs} if derivs else {}),
        }))
        if primed:
            self.monitor.prime(t, primed)
        before = self.monitor.verdict
        after = self.monitor.step(t, values, derivs)
        if after is not before:
            events.append(self._event("verdict", t, verdict=after.value))
        if self.monitor.finished or (self.early_stop and after.decided):
            events.extend(self._finish_episode())
        return events

    def _finish_episode(self) -> list[MonitorEvent]:
        events: list[MonitorEvent] = []
        result = self.monitor.finish()
        self.last_result = result
        self.monitor = None
        self.episodes_done += 1
        events.append(self._event(
            "episode", self._released_to, verdict=result.verdict.value,
            payload=result.to_dict(),
        ))
        if self.sprt is not None and result.verdict.decided:
            decision = self.sprt.update(result.verdict is Verdict.TRUE)
            if decision is not None:
                self.done = True
                events.append(self._event(
                    "decision", self._released_to, verdict=decision.decision,
                    payload={"samples": decision.samples_used,
                             "successes": decision.successes},
                ))
        if self.max_episodes is not None and self.episodes_done >= self.max_episodes:
            self.done = True
        return events

    def _event(self, kind: str, t: float, verdict: str = "",
               payload: dict | None = None) -> MonitorEvent:
        if not math.isfinite(t):
            t = self._released_to if math.isfinite(self._released_to) else 0.0
        ev = MonitorEvent(
            kind=kind,
            stream=self.stream_id,
            time=t,
            episode=max(self.episode, 0),
            verdict=verdict,
            payload=payload or {},
            seq=self._event_seq,
        )
        self._event_seq += 1
        return ev
