"""Sample sources: replay, file tailing, and synthetic scenario fleets.

Three ways to feed a :class:`~repro.monitor.supervisor.FleetSupervisor`:

* :func:`replay_source` -- re-emit the journaled samples of an
  :class:`~repro.monitor.store.EventStore`, preserving the original
  cross-stream interleaving (recovery, regression runs, demos).
* :func:`tail_source` -- read timestamped samples from a CSV or JSONL
  file, optionally following it as it grows (integration with external
  simulators that drop rows into a file).
* :func:`stream_scenario` -- the synthetic fleet driver: registers
  ``n`` streams of one catalog scenario on a supervisor and feeds them
  episode-by-episode with freshly simulated trajectories (the same
  sampling path the batch SMC engine uses), round-robin interleaved so
  the whole fleet advances together and the supervisor's vectorized
  predicate pass sees cross-stream batches.

The synthetic driver streams each sample **with its derivative row**,
so the online monitors' dense output interpolates exactly like the
batch monitor over the original trajectory -- the conformance suite
leans on this.
"""

from __future__ import annotations

import csv
import json
import math as _math
import os
import time as _time
from typing import Any, Iterator, Mapping

from repro import progress
from repro.api.serialize import bltl_from_value
from repro.scenarios import get_scenario
from repro.smc.bltl import BLTL
from repro.smc.engine import InitialDistribution, StatisticalModelChecker

from .store import EventStore
from .supervisor import FleetSupervisor

__all__ = [
    "replay_source",
    "tail_source",
    "scenario_property",
    "stream_scenario",
]

#: A source item: ``(stream_id, t, values, derivs_or_None)``.
Sample = tuple


# ----------------------------------------------------------------------
# replay
# ----------------------------------------------------------------------


def replay_source(store: EventStore, streams: list[str] | None = None) -> Iterator[Sample]:
    """Re-emit a journal's samples in their original append order.

    Restricting to ``streams`` filters the interleaving without
    changing per-stream order.
    """
    wanted = set(streams) if streams is not None else None
    for ev in store.replay(kinds=frozenset({"sample"})):
        if wanted is not None and ev.stream not in wanted:
            continue
        yield ev.stream, ev.time, ev.payload["values"], ev.payload.get("derivs")


# ----------------------------------------------------------------------
# file tailing
# ----------------------------------------------------------------------


def _parse_jsonl_row(line: str, default_stream: str) -> Sample | None:
    d = json.loads(line)
    t = d.get("t", d.get("time"))
    if t is None:
        return None
    stream = str(d.get("stream", default_stream))
    values = d.get("values")
    if values is None:
        values = {k: float(v) for k, v in d.items()
                  if k not in ("t", "time", "stream", "derivs")
                  and isinstance(v, (int, float))}
    return stream, float(t), dict(values), d.get("derivs")


def _parse_csv_row(row: dict, default_stream: str) -> Sample | None:
    t = row.get("t", row.get("time"))
    if t in (None, ""):
        return None
    stream = str(row.get("stream") or default_stream)
    values = {k: float(v) for k, v in row.items()
              if k not in ("t", "time", "stream") and v not in (None, "")}
    return stream, float(t), values, None


def tail_source(
    path: str | os.PathLike,
    follow: bool = False,
    poll: float = 0.2,
    idle_timeout: float | None = None,
) -> Iterator[Sample]:
    """Samples from a CSV or JSONL file, optionally tailing its growth.

    Format is chosen by extension (``.csv`` vs anything else = JSONL).
    JSONL rows are objects with ``t`` (or ``time``), an optional
    ``stream`` id (default: the file stem), and either a nested
    ``values`` object or flat numeric fields.  CSV needs a header with
    a ``t``/``time`` column; remaining columns are state variables
    (non-numeric cells are skipped row-wise).

    With ``follow``, the generator polls for new lines every ``poll``
    seconds and stops after ``idle_timeout`` seconds without growth
    (``None`` = forever; each poll runs a progress checkpoint, so a
    cancel event also stops it).
    """
    path = os.fspath(path)
    default_stream = os.path.splitext(os.path.basename(path))[0]
    is_csv = path.endswith(".csv")
    header: list[str] | None = None
    idle = 0.0
    with open(path, "r", encoding="utf-8", newline="") as fh:
        while True:
            line = fh.readline()
            if not line:
                if not follow:
                    return
                if idle_timeout is not None and idle >= idle_timeout:
                    return
                progress.emit("monitor", "tail", path=1.0)
                _time.sleep(poll)
                idle += poll
                continue
            idle = 0.0
            if not line.strip():
                continue
            if is_csv:
                cells = next(csv.reader([line]))
                if header is None:
                    header = [c.strip() for c in cells]
                    continue
                sample = _parse_csv_row(dict(zip(header, cells)), default_stream)
            else:
                sample = _parse_jsonl_row(line, default_stream)
            if sample is not None:
                yield sample


# ----------------------------------------------------------------------
# synthetic scenario fleets
# ----------------------------------------------------------------------


def scenario_property(
    name: str, params: Mapping[str, Any] | None = None, seed: int = 0
) -> tuple[BLTL, float, StatisticalModelChecker, float | None]:
    """The monitorable core of a catalog scenario.

    Returns ``(phi, horizon, checker, theta)``: the BLTL property, its
    simulation horizon, a trajectory sampler configured exactly like
    the batch SMC task would build it, and the scenario's SPRT
    threshold (``None`` when the scenario doesn't declare one).  Only
    scenarios whose query carries a ``phi`` qualify (the ``smc``
    entries of the catalog); others raise ``ValueError``.
    """
    spec = get_scenario(name).spec(**dict(params or {}))
    q = spec.query
    if not q.get("phi"):
        raise ValueError(
            f"scenario {name!r} has no BLTL property (task {spec.task!r}); "
            "pick an smc scenario"
        )
    phi = bltl_from_value(q["phi"])
    horizon = float(q.get("horizon") or phi.horizon() + 1e-9)
    init = q.get("init") or dict(spec.model.initial)
    entries = {
        k: (float(v[0]), float(v[1])) if isinstance(v, (list, tuple)) else float(v)
        for k, v in dict(init).items()
    }
    checker = StatisticalModelChecker(
        spec.model.system,
        InitialDistribution(entries),
        horizon=horizon,
        seed=seed if spec.seed is None else int(spec.seed) + seed,
        rtol=spec.sim.rtol,
        max_step=spec.sim.max_step,
    )
    theta = q.get("theta")
    return phi, horizon, checker, float(theta) if theta is not None else None


def stream_scenario(
    supervisor: FleetSupervisor,
    name: str,
    streams: int = 8,
    episodes: int = 5,
    seed: int = 0,
    params: Mapping[str, Any] | None = None,
    theta: float | None = None,
    early_stop: bool = True,
    thin: int = 1,
) -> dict[str, int]:
    """Drive a synthetic fleet of one scenario through a supervisor.

    Registers ``streams`` streams named ``{name}-{i:03d}``, then runs up
    to ``episodes`` rounds: each round simulates one fresh trajectory
    per still-active stream (seeded per stream, so the fleet is a
    deterministic function of ``seed``) and feeds the fleet round-robin
    -- one sample per stream per tick -- through
    :meth:`~repro.monitor.supervisor.FleetSupervisor.ingest`.  Episode
    boundaries are punctuated so partially monitored trajectories close
    cleanly; per-stream clocks advance monotonically across episodes.
    ``theta`` (default: the scenario's own) arms the per-stream SPRT;
    streams stop consuming simulations once their test concludes.
    ``thin`` keeps every ``thin``-th sample (coarser streams, faster
    fleets).  Returns the final fleet summary.
    """
    phi, horizon, checker, sc_theta = scenario_property(name, params, seed)
    if theta is None:
        theta = sc_theta
    ids = [f"{name}-{i:03d}" for i in range(int(streams))]
    clocks = {}
    for sid in ids:
        state = supervisor.streams.get(sid)
        if state is None:
            state = supervisor.add_stream(sid, phi, theta=theta, early_stop=early_stop)
        # resume past whatever a journal restore already released
        mark = state.released_to
        clocks[sid] = 0.0 if mark == -_math.inf else mark + horizon * 1e-3
    for round_no in range(int(episodes)):
        alive = [sid for sid in ids if not supervisor.streams[sid].done]
        if not alive:
            break
        feeds = {}
        for sid in alive:
            traj = checker.sample_trajectory()
            step = max(1, int(thin))
            idx = list(range(0, len(traj.times), step))
            if idx[-1] != len(traj.times) - 1:
                idx.append(len(traj.times) - 1)  # keep the horizon endpoint
            feeds[sid] = (traj, idx)
        before = {sid: supervisor.streams[sid].episodes_done for sid in alive}
        tick = 0
        while feeds:
            batch = []
            for sid in list(feeds):
                state = supervisor.streams[sid]
                traj, idx = feeds[sid]
                # stop feeding once this round's episode is over (early
                # stop / SPRT decision): don't leak trajectory tails
                # into the next episode
                if (tick >= len(idx) or state.done
                        or state.episodes_done > before[sid]):
                    del feeds[sid]
                    continue
                i = idx[tick]
                t = clocks[sid] + float(traj.times[i] - traj.times[0])
                values = dict(zip(traj.names, map(float, traj.states[i])))
                derivs = (dict(zip(traj.names, map(float, traj.derivs[i])))
                          if traj.derivs is not None else None)
                batch.append((sid, t, values, derivs))
            if batch:
                supervisor.ingest(batch)
            tick += 1
        supervisor.end_episodes(alive)
        for sid in alive:
            clocks[sid] += horizon * 1.001  # past the episode span, plus a gap
        progress.emit("monitor", "synthetic", round=round_no + 1,
                      **supervisor.summary())
    return supervisor.summary()
