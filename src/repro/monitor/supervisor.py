"""Fleet supervisor: thousands of monitored streams in one process.

The supervisor owns a registry of :class:`~repro.monitor.stream.StreamState`
objects and routes samples to them, adding the cross-cutting concerns a
fleet needs:

* **Event fan-out.**  Every released :class:`~repro.monitor.stream.MonitorEvent`
  goes to the (optional) append-only :class:`~repro.monitor.store.EventStore`;
  verdict transitions additionally go to the subscriber callback and
  are mirrored as :func:`repro.progress.emit` counters, so a progress
  scope (or the process-wide default sink) sees verdict flips and SPRT
  decisions as they happen.
* **Cooperative cancellation.**  ``emit`` doubles as the cancellation
  checkpoint: when the surrounding progress scope's cancel event fires,
  :meth:`FleetSupervisor.run` unwinds via
  :class:`~repro.progress.JobCancelled` within one sample batch.
* **Batched predicate evaluation.**  When a batch of samples arrives
  together (:meth:`ingest`), the state predicates shared across streams
  are judged in one vectorized interval pass over the PR 3 tape
  evaluator (:mod:`repro.solver.tape`) on degenerate (point) boxes.
  Predicates the interval judge decides *with certainty* are primed
  into the per-stream monitors, which then skip the scalar evaluation;
  undecided rows (value within outward rounding of the threshold) fall
  back to the exact scalar path.  Certainty of outward-rounded interval
  arithmetic at a point implies agreement with the scalar semantics,
  so priming never changes a verdict -- only the cost of reaching it.
* **Recovery.**  :meth:`restore` backfills stream states by replaying
  the journaled samples of an existing store through fresh monitors
  (without re-journaling), reproducing the exact pre-crash verdict
  state before live ingestion resumes.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Mapping

import numpy as np

from repro import progress
from repro.intervals import BoxArray
from repro.logic import Formula
from repro.smc.bltl import BLTL
from repro.solver.tape import CERTAIN_FALSE, CERTAIN_TRUE, compile_formula

from .automaton import Verdict
from .store import EventStore, TRANSITION_KINDS
from .stream import MonitorEvent, StreamState

__all__ = ["FleetSupervisor"]

#: A routed sample: ``(stream_id, t, values)`` or
#: ``(stream_id, t, values, derivs)``.
SampleBatch = Iterable[tuple]


class FleetSupervisor:
    """Multiplexes many monitored streams through one event pipeline.

    Parameters
    ----------
    store:
        Optional :class:`~repro.monitor.store.EventStore`; when given,
        *all* events (including the per-sample journal needed for
        replay) are appended to it.
    on_event:
        Subscriber for verdict-transition events (``"sample"`` events
        are store-only -- they would swamp a UI).
    batch_predicates:
        Enable the vectorized tape pre-screen in :meth:`ingest`.
    """

    def __init__(
        self,
        store: EventStore | None = None,
        on_event: Callable[[MonitorEvent], None] | None = None,
        batch_predicates: bool = True,
    ):
        self.store = store
        self.on_event = on_event
        self.batch_predicates = bool(batch_predicates)
        self.streams: dict[str, StreamState] = {}
        self.events_seen = 0
        self._compiled: dict[int, Any] = {}  # id(Formula) -> (CompiledFormula, names)
        self._leaf_cache: dict[int, list[Formula]] = {}  # id(phi) -> leaf formulas

    # ------------------------------------------------------------------
    # registry
    # ------------------------------------------------------------------
    def add_stream(self, stream_id: str, phi: BLTL | Formula, **kwargs: Any) -> StreamState:
        """Register a stream; kwargs go to :class:`StreamState`."""
        if stream_id in self.streams:
            raise ValueError(f"stream {stream_id!r} already registered")
        state = StreamState(stream_id, phi, **kwargs)
        self.streams[stream_id] = state
        return state

    def remove_stream(self, stream_id: str) -> list[MonitorEvent]:
        """Close and drop one stream; returns its closing events."""
        state = self.streams.pop(stream_id)
        return self._dispatch(state.close())

    @property
    def active(self) -> int:
        """Streams not yet done (SPRT undecided, budget unspent)."""
        return sum(1 for s in self.streams.values() if not s.done)

    def summary(self) -> dict[str, int]:
        """Aggregate fleet counters (for progress events and the TUI)."""
        counts = {"streams": len(self.streams), "active": 0, "true": 0,
                  "false": 0, "unknown": 0, "episodes": 0, "samples": 0,
                  "late_dropped": 0}
        for s in self.streams.values():
            if not s.done:
                counts["active"] += 1
            counts[s.verdict.value] += 1
            counts["episodes"] += s.episodes_done
            counts["samples"] += s.samples_seen
            counts["late_dropped"] += s.late_dropped
        return counts

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def push(self, stream_id: str, t: float, values: Mapping[str, float],
             derivs: Mapping[str, float] | None = None) -> list[MonitorEvent]:
        """Route one sample to one stream."""
        return self._dispatch(self.streams[stream_id].push(t, values, derivs))

    def ingest(self, batch: SampleBatch) -> list[MonitorEvent]:
        """Route a batch of samples, with the vectorized predicate pass.

        ``batch`` holds ``(stream_id, t, values[, derivs])`` tuples.
        Samples for unknown stream ids raise ``KeyError``.
        """
        rows = [(sid, float(t), rest[0], rest[1] if len(rest) > 1 else None)
                for sid, t, *rest in batch]
        primed = self._prime(rows) if self.batch_predicates else {}
        events: list[MonitorEvent] = []
        for i, (sid, t, values, derivs) in enumerate(rows):
            events.extend(self._dispatch(
                self.streams[sid].push(t, values, derivs, primed.get(i))
            ))
        return events

    def advance_watermarks(self, t: float) -> list[MonitorEvent]:
        """Punctuate every stream: release reorder buffers up to ``t``."""
        events: list[MonitorEvent] = []
        for s in self.streams.values():
            events.extend(self._dispatch(s.advance_watermark(t)))
        return events

    def end_episodes(self, stream_ids: Iterable[str] | None = None) -> list[MonitorEvent]:
        """Punctuate episode boundaries on the given (default: all) streams."""
        ids = list(stream_ids) if stream_ids is not None else list(self.streams)
        events: list[MonitorEvent] = []
        for sid in ids:
            events.extend(self._dispatch(self.streams[sid].end_episode()))
        return events

    def close_all(self) -> list[MonitorEvent]:
        """Close every stream (flush, finish episodes, conclude SPRTs)."""
        events: list[MonitorEvent] = []
        for s in self.streams.values():
            events.extend(self._dispatch(s.close()))
        progress.emit("monitor", "closed", **self.summary())
        return events

    def run(self, source: Iterable, checkpoint_every: int = 64) -> list[MonitorEvent]:
        """Drain a sample source, with periodic progress checkpoints.

        ``source`` yields the same tuples :meth:`ingest` accepts, one
        at a time or in list-valued batches.  Every
        ``checkpoint_every`` batches a ``monitor/fleet`` progress event
        reports the fleet summary -- and doubles as the cooperative
        cancellation checkpoint.  Stops early once every stream is done.
        """
        events: list[MonitorEvent] = []
        for i, item in enumerate(source):
            batch = item if isinstance(item, list) else [item]
            events.extend(self.ingest(batch))
            if (i + 1) % checkpoint_every == 0:
                progress.emit("monitor", "fleet", **self.summary())
                if self.active == 0:
                    break
        progress.emit("monitor", "fleet", **self.summary())
        return events

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------
    def restore(self, store: EventStore) -> list[MonitorEvent]:
        """Backfill stream states by replaying a journal's samples.

        Streams must have been re-registered (same ids and formulas)
        before the call.  Replayed samples are fed through the normal
        pipeline but **not** re-journaled and **not** re-delivered to
        the subscriber; the regenerated transition events are returned
        so callers can verify them against ``store.transitions()``.
        Streams present in the journal but not registered are skipped.
        """
        regenerated: list[MonitorEvent] = []
        saved_store, saved_sub = self.store, self.on_event
        self.store = None
        self.on_event = None
        try:
            for sid in store.streams():
                state = self.streams.get(sid)
                if state is None:
                    continue
                replay_kinds = frozenset({"sample", "episode", "closed"})
                for ev in store.replay(stream=sid, kinds=replay_kinds):
                    if ev.kind == "sample":
                        regenerated.extend(self._dispatch(state.push(
                            ev.time, ev.payload["values"], ev.payload.get("derivs")
                        )))
                    elif ev.kind == "episode":
                        # re-apply forced boundaries: if the regenerated
                        # stream closed this episode itself (horizon or
                        # early stop), this is a no-op
                        if state.monitor is not None and state.episodes_done == ev.episode:
                            regenerated.extend(self._dispatch(state.end_episode()))
                    elif ev.kind == "closed" and not state.closed:
                        regenerated.extend(self._dispatch(state.close()))
        finally:
            self.store = saved_store
            self.on_event = saved_sub
        return regenerated

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _dispatch(self, events: list[MonitorEvent]) -> list[MonitorEvent]:
        for ev in events:
            self.events_seen += 1
            if self.store is not None:
                self.store.append(ev)
            if ev.kind in TRANSITION_KINDS:
                if self.on_event is not None:
                    self.on_event(ev)
                if ev.kind in ("verdict", "decision"):
                    progress.emit(
                        "monitor", ev.kind, message=ev.describe(),
                        episode=ev.episode, time=ev.time,
                    )
        return events

    def _leaves(self, state: StreamState) -> list[Formula]:
        """The state's predicate leaves (structural per formula, cached)."""
        entry = self._leaf_cache.get(id(state.phi))
        if entry is None:
            from .automaton import _compile
            from repro.smc.bltl import _as_bltl
            _, leaf_nodes = _compile(_as_bltl(state.phi))
            entry = [n.phi.formula for n in leaf_nodes]
            self._leaf_cache[id(state.phi)] = entry
        return entry

    def _compiled_leaf(self, formula: Formula):
        entry = self._compiled.get(id(formula))
        if entry is None:
            names = tuple(sorted(formula.variables()))
            entry = (compile_formula(formula), names)
            self._compiled[id(formula)] = entry
        return entry

    def _prime(self, rows: list[tuple]) -> dict[int, dict[int, Verdict]]:
        """Vectorized certain-verdict pass over a sample batch.

        Groups the batch rows by leaf predicate, judges each group's
        point boxes in one tape pass, and returns, per batch row, the
        leaf verdicts that are certain.  Rows whose streams are closed
        or missing a predicate variable simply don't participate.
        """
        # leaf id -> (formula, names, [(row_idx, leaf_idx, point_row), ...])
        groups: dict[int, tuple[Formula, tuple[str, ...], list]] = {}
        for row_idx, (sid, t, values, _derivs) in enumerate(rows):
            state = self.streams.get(sid)
            if state is None or state.closed or state.done:
                continue
            env = state.extra_env
            for leaf_idx, formula in enumerate(self._leaves(state)):
                compiled, names = self._compiled_leaf(formula)
                try:
                    point = [float(values[n]) if n in values else float(env[n])
                             for n in names]
                except KeyError:
                    continue
                groups.setdefault(id(formula), (formula, names, []))[2].append(
                    (row_idx, leaf_idx, point)
                )
        primed: dict[int, dict[int, Verdict]] = {}
        for formula, names, members in groups.values():
            compiled, _ = self._compiled_leaf(formula)
            pts = np.array([m[2] for m in members], dtype=float)
            if not names:
                pts = pts.reshape(len(members), 0)
            verdicts = compiled.judge(BoxArray(names, pts, pts.copy()), 0.0)
            for (row_idx, leaf_idx, _), v in zip(members, verdicts):
                if v == CERTAIN_TRUE:
                    primed.setdefault(row_idx, {})[leaf_idx] = Verdict.TRUE
                elif v == CERTAIN_FALSE:
                    primed.setdefault(row_idx, {})[leaf_idx] = Verdict.FALSE
        return primed
