"""CSV time-series loading for calibration data.

Experimental data (e.g. BioModels-linked measurements) arrives as CSV
with a time column and one column per observed species; this loader
turns it into the checkpoint bands of :mod:`repro.apps.calibration`.
"""

from __future__ import annotations

import csv
import io
from typing import Mapping

from repro.apps.calibration import TimeSeriesData

__all__ = ["read_timeseries_csv", "parse_timeseries_csv"]


def parse_timeseries_csv(
    text: str,
    time_column: str = "time",
    tolerance: float | Mapping[str, float] = 0.1,
    relative: bool = False,
) -> TimeSeriesData:
    """Parse CSV text into :class:`TimeSeriesData` bands.

    The header row names the columns; every non-time column becomes a
    band variable.  Empty cells are skipped (per-row missing data).
    """
    reader = csv.DictReader(io.StringIO(text))
    if reader.fieldnames is None or time_column not in reader.fieldnames:
        raise ValueError(f"CSV must have a {time_column!r} column")
    samples: list[tuple[float, dict[str, float]]] = []
    for row in reader:
        t_raw = (row.get(time_column) or "").strip()
        if not t_raw:
            continue
        values: dict[str, float] = {}
        for name, cell in row.items():
            if name == time_column or cell is None:
                continue
            cell = cell.strip()
            if cell:
                values[name] = float(cell)
        if values:
            samples.append((float(t_raw), values))
    if not samples:
        raise ValueError("no data rows in CSV")
    return TimeSeriesData.from_samples(samples, tolerance=tolerance, relative=relative)


def read_timeseries_csv(
    path: str,
    time_column: str = "time",
    tolerance: float | Mapping[str, float] = 0.1,
    relative: bool = False,
) -> TimeSeriesData:
    """Load a CSV file of samples into calibration bands."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_timeseries_csv(fh.read(), time_column, tolerance, relative)
