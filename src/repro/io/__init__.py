"""Model and data IO (S12 in DESIGN.md).

SBML-subset reader (the BioModels interchange format consumed by tools
like BioPSy [53]), a native JSON model format, and CSV time-series
loading for calibration data.
"""

from .sbml import SBMLError, SBMLModel, load_sbml, parse_sbml
from .native import (
    dump_model,
    formula_from_dict,
    formula_to_dict,
    hybrid_from_dict,
    hybrid_to_dict,
    load_model,
    ode_from_dict,
    ode_to_dict,
)
from .timeseries import parse_timeseries_csv, read_timeseries_csv

__all__ = [
    "SBMLError",
    "SBMLModel",
    "parse_sbml",
    "load_sbml",
    "formula_to_dict",
    "formula_from_dict",
    "ode_to_dict",
    "ode_from_dict",
    "hybrid_to_dict",
    "hybrid_from_dict",
    "dump_model",
    "load_model",
    "parse_timeseries_csv",
    "read_timeseries_csv",
]
