"""Reader for a pragmatic SBML subset.

BioModels-style ODE models (the data source the paper's tooling, e.g.
BioPSy [53], consumes) are published as SBML.  We parse the subset that
covers mass-action / kinetic-law reaction networks:

* ``listOfCompartments`` (sizes used for concentration scaling),
* ``listOfSpecies`` with ``initialConcentration`` / ``initialAmount``,
* ``listOfParameters`` (global) and per-reaction ``listOfLocalParameters``,
* ``listOfReactions`` with stoichiometric reactants/products and a
  ``kineticLaw`` whose math is a MathML subset: ``<ci>``, ``<cn>``,
  ``<apply>`` with plus/minus/times/divide/power, and the unary
  functions exp/ln/root.

Rate rules (``listOfRules`` of type rateRule) are also supported.  The
result is an :class:`~repro.odes.ODESystem` plus initial conditions:
``dS/dt = sum_r stoich(r, S) * rate_r / compartment(S)``.

Unsupported constructs (events, algebraic rules, function definitions,
delays) raise :class:`SBMLError` -- silently mis-reading a model would
be worse than refusing it.
"""

from __future__ import annotations

import math
import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

from repro.expr import Binary, Const, Expr, Unary, Var
from repro.odes import ODESystem

__all__ = ["SBMLError", "SBMLModel", "parse_sbml", "load_sbml"]


class SBMLError(ValueError):
    """Raised on malformed or unsupported SBML input."""


def _strip(tag: str) -> str:
    """Drop the XML namespace from a tag."""
    return tag.rsplit("}", 1)[-1]


def _finite(raw: str, what: str) -> float:
    """Parse ``raw`` as a finite float, or raise :class:`SBMLError`."""
    try:
        value = float(raw)
    except (TypeError, ValueError) as exc:
        raise SBMLError(f"{what} is not a number: {raw!r}") from exc
    if not math.isfinite(value):
        raise SBMLError(f"{what} is not finite: {raw!r}")
    return value


@dataclass
class SBMLModel:
    """The parsed model: an ODE system plus initial conditions."""

    system: ODESystem
    initial: dict[str, float]
    compartments: dict[str, float] = field(default_factory=dict)
    name: str = "sbml"


_MATHML_BINARY = {
    "plus": "add",
    "minus": "sub",
    "times": "mul",
    "divide": "div",
    "power": "pow",
}

_MATHML_UNARY = {
    "exp": "exp",
    "ln": "log",
    "abs": "abs",
    "sin": "sin",
    "cos": "cos",
    "tan": "tan",
    "tanh": "tanh",
}


def _parse_mathml(node: ET.Element) -> Expr:
    tag = _strip(node.tag)
    if tag == "math":
        children = list(node)
        if len(children) != 1:
            raise SBMLError("<math> must contain exactly one expression")
        return _parse_mathml(children[0])
    if tag == "ci":
        name = (node.text or "").strip()
        if not name:
            raise SBMLError("empty <ci>")
        return Var(name)
    if tag == "cn":
        cn_type = node.attrib.get("type", "real")
        if cn_type in ("real", "integer", "double"):
            try:
                return Const(float((node.text or "").strip()))
            except ValueError as exc:
                raise SBMLError(f"bad <cn> value: {node.text!r}") from exc
        if cn_type == "e-notation":
            parts = [t.strip() for t in node.itertext() if t.strip()]
            if len(parts) != 2:
                raise SBMLError("bad e-notation <cn>")
            return Const(float(parts[0]) * 10.0 ** float(parts[1]))
        raise SBMLError(f"unsupported <cn> type {cn_type!r}")
    if tag == "apply":
        children = list(node)
        if not children:
            raise SBMLError("empty <apply>")
        op = _strip(children[0].tag)
        args = [_parse_mathml(c) for c in children[1:]]
        if op == "minus" and len(args) == 1:
            return Unary("neg", args[0])
        if op in _MATHML_BINARY:
            if len(args) < 2 and op not in ("plus", "times"):
                raise SBMLError(f"<{op}> needs 2 arguments")
            if not args:
                raise SBMLError(f"<{op}> needs arguments")
            out = args[0]
            for a in args[1:]:
                out = Binary(_MATHML_BINARY[op], out, a)
            return out
        if op in _MATHML_UNARY:
            if len(args) != 1:
                raise SBMLError(f"<{op}> needs 1 argument")
            return Unary(_MATHML_UNARY[op], args[0])
        if op == "root":
            # plain square root only (no <degree>)
            if len(args) == 1:
                return Unary("sqrt", args[0])
            raise SBMLError("<root> with degree is not supported")
        raise SBMLError(f"unsupported MathML operator <{op}>")
    raise SBMLError(f"unsupported MathML element <{tag}>")


def parse_sbml(text: str) -> SBMLModel:
    """Parse SBML document text into an :class:`SBMLModel`."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise SBMLError(f"XML parse error: {exc}") from exc
    if _strip(root.tag) != "sbml":
        raise SBMLError(f"root element is <{_strip(root.tag)}>, expected <sbml>")
    model_el = None
    for child in root:
        if _strip(child.tag) == "model":
            model_el = child
            break
    if model_el is None:
        raise SBMLError("no <model> element")

    def section(name: str) -> list[ET.Element]:
        for child in model_el:
            if _strip(child.tag) == name:
                return list(child)
        return []

    for unsupported in ("listOfEvents", "listOfFunctionDefinitions"):
        if section(unsupported):
            raise SBMLError(f"{unsupported} is not supported")

    compartments: dict[str, float] = {}
    for el in section("listOfCompartments"):
        cid = el.attrib.get("id")
        if cid:
            size = _finite(el.attrib.get("size", 1.0), f"compartment {cid!r} size")
            if size <= 0.0:
                raise SBMLError(f"compartment {cid!r} has non-positive size {size!r}")
            compartments[cid] = size

    species_init: dict[str, float] = {}
    species_compartment: dict[str, str] = {}
    boundary: set[str] = set()
    for el in section("listOfSpecies"):
        sid = el.attrib.get("id")
        if not sid:
            raise SBMLError("species without id")
        conc_attr = el.attrib.get("initialConcentration")
        amount_attr = el.attrib.get("initialAmount")
        if conc_attr is not None and amount_attr is not None:
            # both units declared at once: refusing beats guessing which
            # one the author meant (they disagree whenever size != 1)
            raise SBMLError(
                f"species {sid!r} declares both initialConcentration and "
                "initialAmount; units are ambiguous"
            )
        conc = _finite(
            conc_attr if conc_attr is not None else (amount_attr or "0"),
            f"species {sid!r} initial value",
        )
        if conc < 0.0:
            raise SBMLError(f"species {sid!r} has negative initial value {conc!r}")
        species_init[sid] = conc
        species_compartment[sid] = el.attrib.get("compartment", "")
        if el.attrib.get("boundaryCondition", "false").lower() == "true":
            boundary.add(sid)

    params: dict[str, float] = {}
    for el in section("listOfParameters"):
        pid = el.attrib.get("id")
        if pid:
            params[pid] = _finite(
                el.attrib.get("value", 0.0), f"parameter {pid!r} value"
            )

    # accumulate dS/dt
    derivs: dict[str, Expr] = {s: Const(0.0) for s in species_init if s not in boundary}

    for rx in section("listOfReactions"):
        rid = rx.attrib.get("id", "r")
        reversible = rx.attrib.get("reversible", "false")
        kinetic: Expr | None = None
        reactants: list[tuple[str, float]] = []
        products: list[tuple[str, float]] = []
        for part in rx:
            ptag = _strip(part.tag)
            if ptag == "listOfReactants":
                for sr in part:
                    reactants.append((
                        sr.attrib["species"],
                        _finite(sr.attrib.get("stoichiometry", 1), f"{rid!r} stoichiometry"),
                    ))
            elif ptag == "listOfProducts":
                for sr in part:
                    products.append((
                        sr.attrib["species"],
                        _finite(sr.attrib.get("stoichiometry", 1), f"{rid!r} stoichiometry"),
                    ))
            elif ptag == "kineticLaw":
                for kchild in part:
                    ktag = _strip(kchild.tag)
                    if ktag == "math":
                        kinetic = _parse_mathml(kchild)
                    elif ktag in ("listOfParameters", "listOfLocalParameters"):
                        for lp in kchild:
                            lid = lp.attrib.get("id")
                            if lid:
                                # prefix to avoid collisions with globals
                                params.setdefault(
                                    lid,
                                    _finite(
                                        lp.attrib.get("value", 0.0),
                                        f"local parameter {lid!r} value",
                                    ),
                                )
        if kinetic is None:
            raise SBMLError(f"reaction {rid!r} has no kinetic law")
        __ = reversible  # reversibility is encoded in the rate sign
        for sid, stoich in reactants:
            if sid in derivs:
                derivs[sid] = derivs[sid] - Const(stoich) * kinetic
        for sid, stoich in products:
            if sid in derivs:
                derivs[sid] = derivs[sid] + Const(stoich) * kinetic

    for el in section("listOfRules"):
        if _strip(el.tag) != "rateRule":
            raise SBMLError(f"unsupported rule <{_strip(el.tag)}>")
        target = el.attrib.get("variable")
        if target not in derivs:
            raise SBMLError(f"rateRule for unknown species {target!r}")
        for child in el:
            if _strip(child.tag) == "math":
                derivs[target] = derivs[target] + _parse_mathml(child)

    # compartment scaling: amounts -> concentrations
    scaled: dict[str, Expr] = {}
    for sid, expr in derivs.items():
        comp = species_compartment.get(sid, "")
        size = compartments.get(comp, 1.0)
        scaled[sid] = expr if size == 1.0 else expr / Const(size)

    # substitute boundary species by their (constant) initial values
    if boundary:
        bsubs = {b: species_init[b] for b in boundary}
        scaled = {k: e.subs(bsubs) for k, e in scaled.items()}

    name = model_el.attrib.get("id", model_el.attrib.get("name", "sbml"))
    system = ODESystem(
        {k: e.simplify() for k, e in scaled.items()}, params, name=name
    )
    initial = {s: species_init[s] for s in system.state_names}
    return SBMLModel(system, initial, compartments, name)


def load_sbml(path: str) -> SBMLModel:
    """Parse an SBML file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_sbml(fh.read())
