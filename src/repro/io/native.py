"""Native JSON serialization for ODE systems and hybrid automata.

A plain-text interchange format so models can be versioned, shared and
loaded without executing Python: expressions are stored as infix
strings (round-tripped through :func:`repro.expr.parse_expr`), formulas
as ``{"op": ..., ...}`` trees.
"""

from __future__ import annotations

import json
from typing import Any

from repro.expr import Expr, parse_expr
from repro.hybrid import HybridAutomaton, Jump, Mode
from repro.intervals import Box
from repro.logic import (
    FALSE,
    TRUE,
    And,
    Atom,
    FalseFormula,
    Formula,
    Or,
    TrueFormula,
)
from repro.odes import ODESystem

__all__ = [
    "formula_to_dict",
    "formula_from_dict",
    "ode_to_dict",
    "ode_from_dict",
    "hybrid_to_dict",
    "hybrid_from_dict",
    "dump_model",
    "load_model",
]


# ----------------------------------------------------------------------
# Formula <-> dict
# ----------------------------------------------------------------------


def formula_to_dict(phi: Formula) -> dict[str, Any]:
    if isinstance(phi, TrueFormula):
        return {"op": "true"}
    if isinstance(phi, FalseFormula):
        return {"op": "false"}
    if isinstance(phi, Atom):
        return {"op": "atom", "term": str(phi.term), "strict": phi.strict}
    if isinstance(phi, And):
        return {"op": "and", "parts": [formula_to_dict(p) for p in phi.parts]}
    if isinstance(phi, Or):
        return {"op": "or", "parts": [formula_to_dict(p) for p in phi.parts]}
    raise TypeError(f"cannot serialize formula {type(phi).__name__}")


def formula_from_dict(d: dict[str, Any]) -> Formula:
    op = d["op"]
    if op == "true":
        return TRUE
    if op == "false":
        return FALSE
    if op == "atom":
        return Atom(_parse(d["term"]), strict=bool(d["strict"]))
    if op == "and":
        return And(*[formula_from_dict(p) for p in d["parts"]])
    if op == "or":
        return Or(*[formula_from_dict(p) for p in d["parts"]])
    raise ValueError(f"unknown formula op {op!r}")


def _parse(text: str) -> Expr:
    # str(Expr) uses ^ for pow, which parse_expr accepts
    return parse_expr(text)


# ----------------------------------------------------------------------
# ODESystem <-> dict
# ----------------------------------------------------------------------


def ode_to_dict(system: ODESystem) -> dict[str, Any]:
    return {
        "type": "ode",
        "name": system.name,
        "derivatives": {k: str(e) for k, e in system.derivatives.items()},
        "params": dict(system.params),
    }


def ode_from_dict(d: dict[str, Any]) -> ODESystem:
    if d.get("type") != "ode":
        raise ValueError(f"expected type 'ode', got {d.get('type')!r}")
    return ODESystem(
        {k: _parse(v) for k, v in d["derivatives"].items()},
        dict(d.get("params", {})),
        name=d.get("name", "ode"),
    )


# ----------------------------------------------------------------------
# HybridAutomaton <-> dict
# ----------------------------------------------------------------------


def hybrid_to_dict(automaton: HybridAutomaton) -> dict[str, Any]:
    if not isinstance(automaton.init, Box):
        raise TypeError("only Box initial sets are serializable")
    return {
        "type": "hybrid",
        "name": automaton.name,
        "variables": list(automaton.variables),
        "params": dict(automaton.params),
        "initial_mode": automaton.initial_mode,
        "init": {k: [iv.lo, iv.hi] for k, iv in automaton.init.items()},
        "modes": [
            {
                "name": m.name,
                "derivatives": {k: str(e) for k, e in m.derivatives.items()},
                "invariant": formula_to_dict(m.invariant),
            }
            for m in automaton.modes
        ],
        "jumps": [
            {
                "source": j.source,
                "target": j.target,
                "guard": formula_to_dict(j.guard),
                "reset": {k: str(e) for k, e in j.reset.items()},
            }
            for j in automaton.jumps
        ],
    }


def hybrid_from_dict(d: dict[str, Any]) -> HybridAutomaton:
    if d.get("type") != "hybrid":
        raise ValueError(f"expected type 'hybrid', got {d.get('type')!r}")
    modes = [
        Mode(
            m["name"],
            {k: _parse(v) for k, v in m["derivatives"].items()},
            invariant=formula_from_dict(m.get("invariant", {"op": "true"})),
        )
        for m in d["modes"]
    ]
    jumps = [
        Jump(
            j["source"],
            j["target"],
            guard=formula_from_dict(j.get("guard", {"op": "true"})),
            reset={k: _parse(v) for k, v in j.get("reset", {}).items()},
        )
        for j in d.get("jumps", [])
    ]
    init = Box.from_bounds({k: tuple(v) for k, v in d["init"].items()})
    return HybridAutomaton(
        list(d["variables"]),
        modes,
        jumps,
        d["initial_mode"],
        init,
        dict(d.get("params", {})),
        name=d.get("name", "hybrid"),
    )


# ----------------------------------------------------------------------
# File front door
# ----------------------------------------------------------------------


def dump_model(model: ODESystem | HybridAutomaton, path: str) -> None:
    """Write a model as JSON."""
    if isinstance(model, ODESystem):
        payload = ode_to_dict(model)
    elif isinstance(model, HybridAutomaton):
        payload = hybrid_to_dict(model)
    else:
        raise TypeError(f"cannot serialize {type(model).__name__}")
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2)


def load_model(path: str) -> ODESystem | HybridAutomaton:
    """Load a model written by :func:`dump_model`."""
    with open(path, "r", encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("type") == "ode":
        return ode_from_dict(payload)
    if payload.get("type") == "hybrid":
        return hybrid_from_dict(payload)
    raise ValueError(f"unknown model type {payload.get('type')!r}")
