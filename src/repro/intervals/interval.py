"""Outward-rounded interval arithmetic.

This module is the numerical foundation of the delta-decision procedure
(paper Section III): every term of an ``L_RF`` formula is evaluated over
interval boxes, and the soundness of the whole solver rests on the
*inclusion property* of the operations implemented here -- for any
intervals ``X``, ``Y`` and any reals ``x in X``, ``y in Y``, the result
``op(X, Y)`` must contain ``op(x, y)``.

Directed rounding is emulated with :func:`math.nextafter` bumps: after
computing each bound in double precision we widen it by one ulp in the
outward direction.  That over-approximates true directed rounding, which
is exactly what soundness requires (the enclosure may only get wider).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

__all__ = ["Interval", "EMPTY"]

_INF = math.inf


_FLOAT_MAX = math.nextafter(_INF, 0.0)  # largest finite double


def _down(x: float) -> float:
    """Round ``x`` one ulp toward -inf.

    A *lower* bound of ``+inf`` can only come from overflow of a finite
    quantity (or from a genuinely unbounded one); in both cases the
    largest finite float is a sound lower bound, so we return that --
    otherwise ``[inf, inf]`` enclosures would drop finite huge values.
    """
    if x == _INF:
        return _FLOAT_MAX
    if x == -_INF:
        return x
    return math.nextafter(x, -_INF)


def _up(x: float) -> float:
    """Round ``x`` one ulp toward +inf (dual of :func:`_down`)."""
    if x == -_INF:
        return -_FLOAT_MAX
    if x == _INF:
        return x
    return math.nextafter(x, _INF)


def _add_down(a: float, b: float) -> float:
    """Lower bound of a+b: exact when TwoSum reports no rounding error."""
    s = a + b
    if math.isfinite(s):
        bb = s - a
        if (a - (s - bb)) + (b - bb) == 0.0:
            return s
    return _down(s)


def _add_up(a: float, b: float) -> float:
    """Upper bound of a+b (exactness-aware, see :func:`_add_down`)."""
    s = a + b
    if math.isfinite(s):
        bb = s - a
        if (a - (s - bb)) + (b - bb) == 0.0:
            return s
    return _up(s)


_SPLITTER = 134217729.0  # 2**27 + 1, Dekker splitting constant


def _pow_bound(x: float, n: int) -> float:
    """``x ** n`` with float overflow mapped to the signed infinity.

    CPython's ``float.__pow__`` raises :exc:`OverflowError` where the
    vectorized kernel's ``np.power`` returns ``inf``; the two kernels
    must agree, and a crash is never a sound enclosure.
    """
    try:
        return x ** n
    except OverflowError:
        return -_INF if (x < 0.0 and n % 2) else _INF


def _mul_exact(a: float, b: float, p: float) -> bool:
    """True when ``p == a*b`` exactly (Dekker two-product residual test)."""
    if not math.isfinite(p) or abs(a) > 1e150 or abs(b) > 1e150:
        return p == 0.0 and (a == 0.0 or b == 0.0)
    ca = _SPLITTER * a
    ah = ca - (ca - a)
    al = a - ah
    cb = _SPLITTER * b
    bh = cb - (cb - b)
    bl = b - bh
    err = ((ah * bh - p) + ah * bl + al * bh) + al * bl
    return err == 0.0


@dataclass(frozen=True, slots=True)
class Interval:
    """A closed real interval ``[lo, hi]`` with outward-rounded arithmetic.

    The empty interval is represented by ``lo > hi`` (canonically
    ``[+inf, -inf]``, see :data:`EMPTY`).  All arithmetic operations
    satisfy the inclusion property required by interval constraint
    propagation.
    """

    lo: float
    hi: float

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def point(x: float) -> "Interval":
        """Degenerate interval ``[x, x]``."""
        return Interval(float(x), float(x))

    @staticmethod
    def make(lo: float, hi: float) -> "Interval":
        """Interval ``[lo, hi]``; returns :data:`EMPTY` when ``lo > hi``."""
        lo, hi = float(lo), float(hi)
        if lo > hi or math.isnan(lo) or math.isnan(hi):
            return EMPTY
        return Interval(lo, hi)

    @staticmethod
    def entire() -> "Interval":
        """The whole real line ``[-inf, +inf]``."""
        return Interval(-_INF, _INF)

    @staticmethod
    def hull_of(values: Iterable[float]) -> "Interval":
        """Smallest interval containing every value in ``values``."""
        vals = [float(v) for v in values]
        if not vals:
            return EMPTY
        return Interval(min(vals), max(vals))

    # ------------------------------------------------------------------
    # Predicates and measures
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_point(self) -> bool:
        return self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return not self.is_empty and math.isfinite(self.lo) and math.isfinite(self.hi)

    def width(self) -> float:
        """Diameter ``hi - lo``; 0 for empty and degenerate intervals.

        Degenerate includes infinite endpoints: ``[inf, inf]`` (produced
        deliberately by outward rounding past ``_FLOAT_MAX``) must have
        width 0, not ``inf - inf = NaN`` -- a NaN width poisons the
        widest-first ordering of the ICP frontier heap.
        """
        if self.is_empty or self.lo == self.hi:
            return 0.0
        return self.hi - self.lo

    def midpoint(self) -> float:
        """A finite representative point (midpoint, clipped for unbounded ends)."""
        if self.is_empty:
            raise ValueError("midpoint of empty interval")
        if self.is_bounded:
            mid = 0.5 * (self.lo + self.hi)
            if math.isfinite(mid):
                return mid
            return self.lo + 0.5 * (self.hi - self.lo)
        if math.isfinite(self.lo):
            return self.lo + 1.0
        if math.isfinite(self.hi):
            return self.hi - 1.0
        return 0.0

    def radius(self) -> float:
        return 0.5 * self.width()

    def magnitude(self) -> float:
        """max(|x| : x in self)."""
        if self.is_empty:
            return 0.0
        return max(abs(self.lo), abs(self.hi))

    def mignitude(self) -> float:
        """min(|x| : x in self)."""
        if self.is_empty:
            return 0.0
        if self.contains(0.0):
            return 0.0
        return min(abs(self.lo), abs(self.hi))

    def contains(self, x: float) -> bool:
        return (not self.is_empty) and self.lo <= x <= self.hi

    def contains_interval(self, other: "Interval") -> bool:
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def strictly_positive(self) -> bool:
        return (not self.is_empty) and self.lo > 0.0

    def strictly_negative(self) -> bool:
        return (not self.is_empty) and self.hi < 0.0

    def nonnegative(self) -> bool:
        return (not self.is_empty) and self.lo >= 0.0

    def nonpositive(self) -> bool:
        return (not self.is_empty) and self.hi <= 0.0

    def overlaps(self, other: "Interval") -> bool:
        if self.is_empty or other.is_empty:
            return False
        return self.lo <= other.hi and other.lo <= self.hi

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def intersect(self, other: "Interval") -> "Interval":
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval.make(max(self.lo, other.lo), min(self.hi, other.hi))

    def hull(self, other: "Interval") -> "Interval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return Interval(min(self.lo, other.lo), max(self.hi, other.hi))

    def split(self, at: float | None = None) -> tuple["Interval", "Interval"]:
        """Bisect at ``at`` (default midpoint) into two overlapping halves."""
        if self.is_empty:
            return EMPTY, EMPTY
        cut = self.midpoint() if at is None else float(at)
        cut = min(max(cut, self.lo), self.hi)
        return Interval(self.lo, cut), Interval(cut, self.hi)

    def inflate(self, eps: float) -> "Interval":
        """Widen by ``eps`` on both sides."""
        if self.is_empty:
            return EMPTY
        return Interval(self.lo - eps, self.hi + eps)

    def clamp(self, lo: float, hi: float) -> "Interval":
        return self.intersect(Interval(lo, hi))

    def sample(self, n: int) -> list[float]:
        """``n`` evenly spaced points including endpoints (midpoint when n==1)."""
        if self.is_empty or n <= 0:
            return []
        if n == 1 or self.is_point:
            return [self.midpoint()]
        step = self.width() / (n - 1)
        return [self.lo + i * step for i in range(n)]

    # ------------------------------------------------------------------
    # Arithmetic (outward rounded)
    # ------------------------------------------------------------------
    def __add__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval(_add_down(self.lo, other.lo), _add_up(self.hi, other.hi))

    __radd__ = __add__

    def __neg__(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        return Interval(-self.hi, -self.lo)

    def __sub__(self, other: "Interval | float") -> "Interval":
        return self + (-_as_interval(other))

    def __rsub__(self, other: float) -> "Interval":
        return _as_interval(other) - self

    def __mul__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        cands = []
        for a in (self.lo, self.hi):
            for b in (other.lo, other.hi):
                p = a * b
                if math.isnan(p):  # 0 * inf
                    p = 0.0
                cands.append((p, a, b))
        plo, alo, blo = min(cands, key=lambda c: c[0])
        phi_, ahi, bhi = max(cands, key=lambda c: c[0])
        lo = plo if _mul_exact(alo, blo, plo) else _down(plo)
        hi = phi_ if _mul_exact(ahi, bhi, phi_) else _up(phi_)
        return Interval(lo, hi)

    __rmul__ = __mul__

    def inverse(self) -> "Interval":
        """1/self; returns the entire line when 0 is interior."""
        if self.is_empty:
            return EMPTY
        if self.lo == 0.0 and self.hi == 0.0:
            return EMPTY
        if self.contains(0.0):
            if self.lo == 0.0:
                return Interval(_down(1.0 / self.hi), _INF)
            if self.hi == 0.0:
                return Interval(-_INF, _up(1.0 / self.lo))
            return Interval.entire()
        return Interval(_down(1.0 / self.hi), _up(1.0 / self.lo))

    def __truediv__(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        return self * other.inverse()

    def __rtruediv__(self, other: float) -> "Interval":
        return _as_interval(other) / self

    def __abs__(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return -self
        return Interval(0.0, max(-self.lo, self.hi))

    def sqr(self) -> "Interval":
        a = abs(self)
        if a.is_empty:
            return EMPTY
        return Interval(_down(a.lo * a.lo), _up(a.hi * a.hi))

    def pow(self, n: int | float) -> "Interval":
        """``self ** n``.  Integer exponents use exact monotonicity case
        analysis; fractional exponents require a nonnegative base."""
        if self.is_empty:
            return EMPTY
        if isinstance(n, int) or (isinstance(n, float) and n.is_integer()):
            n = int(n)
            if n == 0:
                return Interval.point(1.0)
            if n < 0:
                return self.pow(-n).inverse()
            if n % 2 == 0:
                a = abs(self)
                return Interval(_down(_pow_bound(a.lo, n)), _up(_pow_bound(a.hi, n)))
            return Interval(
                _down(_pow_bound(self.lo, n)), _up(_pow_bound(self.hi, n))
            )
        base = self.intersect(Interval(0.0, _INF))
        if base.is_empty:
            return EMPTY
        if base.lo > 0.0:
            return (base.log() * _as_interval(n)).exp()
        if n < 0.0:
            # x**n blows up at 0+: a zero-touching base maps to
            # [base.hi**n, +inf) -- capping the upper bound (the old
            # log/exp path floored the base at 1e-300, i.e. capped the
            # result near 1e150*|n|) violates inclusion.
            if base.hi == 0.0:
                return EMPTY
            return Interval(max(0.0, _down(math.pow(base.hi, n))), _INF)
        return Interval(0.0, 0.0).hull(
            (Interval(max(base.lo, 1e-300), base.hi).log() * _as_interval(n)).exp()
        )

    def __pow__(self, n: int | float) -> "Interval":
        return self.pow(n)

    def sqrt(self) -> "Interval":
        s = self.intersect(Interval(0.0, _INF))
        if s.is_empty:
            return EMPTY
        return Interval(_down(math.sqrt(s.lo)), _up(math.sqrt(s.hi)))

    def exp(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        try:
            lo = math.exp(self.lo)
        except OverflowError:
            lo = _INF
        try:
            hi = math.exp(self.hi)
        except OverflowError:
            hi = _INF
        return Interval(max(0.0, _down(lo)), _up(hi))

    def log(self) -> "Interval":
        s = self.intersect(Interval(0.0, _INF))
        if s.is_empty:
            return EMPTY
        lo = -_INF if s.lo == 0.0 else _down(math.log(s.lo))
        hi = -_INF if s.hi == 0.0 else _up(math.log(s.hi))
        return Interval.make(lo, hi)

    def sin(self) -> "Interval":
        return _periodic_trig(self, math.sin, offset=0.0)

    def cos(self) -> "Interval":
        return _periodic_trig(self, math.cos, offset=math.pi / 2.0)

    def tan(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        if not self.is_bounded or self.width() >= math.pi:
            return Interval.entire()
        # A pole x = pi/2 + k*pi lies inside?
        k_lo = math.floor((self.lo - math.pi / 2.0) / math.pi)
        k_hi = math.floor((self.hi - math.pi / 2.0) / math.pi)
        if k_lo != k_hi:
            return Interval.entire()
        return Interval(_down(math.tan(self.lo)), _up(math.tan(self.hi)))

    def tanh(self) -> "Interval":
        if self.is_empty:
            return EMPTY
        return Interval(
            max(-1.0, _down(math.tanh(self.lo))),
            min(1.0, _up(math.tanh(self.hi))),
        )

    def sigmoid(self) -> "Interval":
        """Logistic function 1 / (1 + exp(-x)), monotone increasing."""
        if self.is_empty:
            return EMPTY

        def sig(x: float) -> float:
            if x >= 0:
                return 1.0 / (1.0 + math.exp(-x))
            e = math.exp(x)
            return e / (1.0 + e)

        return Interval(max(0.0, _down(sig(self.lo))), min(1.0, _up(sig(self.hi))))

    def min_with(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval(min(self.lo, other.lo), min(self.hi, other.hi))

    def max_with(self, other: "Interval | float") -> "Interval":
        other = _as_interval(other)
        if self.is_empty or other.is_empty:
            return EMPTY
        return Interval(max(self.lo, other.lo), max(self.hi, other.hi))

    # ------------------------------------------------------------------
    # Dunder utilities
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[float]:
        yield self.lo
        yield self.hi

    def __repr__(self) -> str:
        if self.is_empty:
            return "Interval(EMPTY)"
        return f"Interval({self.lo:.6g}, {self.hi:.6g})"


EMPTY = Interval(_INF, -_INF)
"""The canonical empty interval."""


def _as_interval(x: "Interval | float") -> Interval:
    if isinstance(x, Interval):
        return x
    return Interval.point(float(x))


def _periodic_trig(iv: Interval, fn, offset: float) -> Interval:
    """Enclosure of sin (offset=0) / cos (offset=pi/2) over ``iv``.

    The extrema of sin occur at pi/2 + k*pi; shifting by ``offset`` maps
    the cos case onto the sin analysis.
    """
    if iv.is_empty:
        return EMPTY
    if iv.width() >= 2.0 * math.pi or not iv.is_bounded:
        return Interval(-1.0, 1.0)
    lo_v, hi_v = fn(iv.lo), fn(iv.hi)
    lo, hi = min(lo_v, hi_v), max(lo_v, hi_v)
    # check whether a max point (x where sin'(x+offset)=0 and value=+1)
    # i.e. x + offset = pi/2 + 2k*pi falls inside iv
    two_pi = 2.0 * math.pi
    k_max = math.ceil((iv.lo + offset - math.pi / 2.0) / two_pi)
    if (math.pi / 2.0 - offset) + k_max * two_pi <= iv.hi:
        hi = 1.0
    k_min = math.ceil((iv.lo + offset + math.pi / 2.0) / two_pi)
    if (-math.pi / 2.0 - offset) + k_min * two_pi <= iv.hi:
        lo = -1.0
    return Interval(max(-1.0, _down(lo)), min(1.0, _up(hi)))
