"""Vectorized interval arithmetic: batches of intervals and boxes.

This is the data-parallel twin of :mod:`repro.intervals.interval`: an
:class:`IntervalArray` holds ``n`` independent intervals as ``lo``/``hi``
float64 arrays and applies every operation to the whole batch at once
with NumPy, and a :class:`BoxArray` holds ``n`` boxes over a fixed,
ordered variable tuple as ``(n, dim)`` bound arrays.

The semantics mirror the scalar kernel operation by operation:

* outward rounding is the same one-ulp ``nextafter`` bump, skipped when
  the double result is provably exact (TwoSum residual for addition,
  Dekker two-product residual for multiplication) -- so batched results
  are bit-identical to the scalar kernel wherever both are defined;
* the empty interval is ``lo > hi`` (canonically ``[+inf, -inf]``) and
  propagates through every operation;
* the inclusion property holds row-wise: for any ``x in X[i]``,
  ``y in Y[i]``, ``op(X, Y)[i]`` contains ``op(x, y)``.

The ICP frontier loop and the formula tape evaluator
(:mod:`repro.solver.tape`) run entirely on these arrays, which is what
turns the per-box scalar search into a batch-of-boxes search.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from .box import Box
from .interval import Interval

__all__ = ["IntervalArray", "BoxArray"]

_INF = math.inf
_FLOAT_MAX = math.nextafter(_INF, 0.0)
_SPLITTER = 134217729.0  # 2**27 + 1, Dekker splitting constant

def _quiet():
    """Fresh errstate: outward rounding deliberately produces infinities,
    0*inf, and empty-lane NaNs that are masked out afterwards."""
    return np.errstate(all="ignore")


def _down(x: np.ndarray) -> np.ndarray:
    """One ulp toward -inf; ``+inf`` clamps to the largest finite double
    (matching the scalar kernel's overflow-sound lower bounds)."""
    return np.nextafter(x, -_INF)


def _up(x: np.ndarray) -> np.ndarray:
    return np.nextafter(x, _INF)


def _add_bound(a: np.ndarray, b: np.ndarray, up: bool) -> np.ndarray:
    """Directed a+b: exact when the TwoSum residual vanishes."""
    s = a + b
    bb = s - a
    err = (a - (s - bb)) + (b - bb)
    exact = np.isfinite(s) & (err == 0.0)
    return np.where(exact, s, _up(s) if up else _down(s))


def _mul_exact(a: np.ndarray, b: np.ndarray, p: np.ndarray) -> np.ndarray:
    """Mask of lanes where ``p == a*b`` exactly (Dekker residual)."""
    big = ~np.isfinite(p) | (np.abs(a) > 1e150) | (np.abs(b) > 1e150)
    ca = _SPLITTER * a
    ah = ca - (ca - a)
    al = a - ah
    cb = _SPLITTER * b
    bh = cb - (cb - b)
    bl = b - bh
    err = ((ah * bh - p) + ah * bl + al * bh) + al * bl
    fallback = (p == 0.0) & ((a == 0.0) | (b == 0.0))
    return np.where(big, fallback, err == 0.0)


class IntervalArray:
    """A batch of closed intervals ``[lo[i], hi[i]]`` under outward-rounded
    vectorized arithmetic.  Rows with ``lo > hi`` are empty."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: np.ndarray, hi: np.ndarray):
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def make(lo, hi) -> "IntervalArray":
        """Sanitizing constructor: NaN bounds become empty rows."""
        lo = np.asarray(lo, dtype=float).copy()
        hi = np.asarray(hi, dtype=float).copy()
        bad = np.isnan(lo) | np.isnan(hi)
        lo[bad] = _INF
        hi[bad] = -_INF
        return IntervalArray(lo, hi)

    @staticmethod
    def point(x) -> "IntervalArray":
        x = np.asarray(x, dtype=float)
        return IntervalArray(x.copy(), x.copy())

    @staticmethod
    def constant(value: float, n: int) -> "IntervalArray":
        return IntervalArray(np.full(n, float(value)), np.full(n, float(value)))

    @staticmethod
    def empty(n: int) -> "IntervalArray":
        return IntervalArray(np.full(n, _INF), np.full(n, -_INF))

    @staticmethod
    def entire(n: int) -> "IntervalArray":
        return IntervalArray(np.full(n, -_INF), np.full(n, _INF))

    @staticmethod
    def from_intervals(ivs: Iterable[Interval]) -> "IntervalArray":
        ivs = list(ivs)
        return IntervalArray(
            np.array([iv.lo for iv in ivs], dtype=float),
            np.array([iv.hi for iv in ivs], dtype=float),
        )

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.lo.shape[0])

    def __getitem__(self, i) -> Interval:
        return Interval(float(self.lo[i]), float(self.hi[i]))

    def copy(self) -> "IntervalArray":
        return IntervalArray(self.lo.copy(), self.hi.copy())

    def take(self, idx) -> "IntervalArray":
        return IntervalArray(self.lo[idx], self.hi[idx])

    def to_intervals(self) -> list[Interval]:
        return [Interval(float(a), float(b)) for a, b in zip(self.lo, self.hi)]

    # ------------------------------------------------------------------
    # Predicates and measures (per row)
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> np.ndarray:
        return self.lo > self.hi

    def width(self) -> np.ndarray:
        # lo == hi covers degenerate infinite rows ([inf, inf] from
        # outward rounding past _FLOAT_MAX), whose ``hi - lo`` would be
        # ``inf - inf = NaN`` -- matching the scalar kernel's width().
        with _quiet():
            degenerate = self.is_empty | (self.lo == self.hi)
            return np.where(degenerate, 0.0, self.hi - self.lo)

    def contains(self, x) -> np.ndarray:
        return ~self.is_empty & (self.lo <= x) & (x <= self.hi)

    def contains_zero(self) -> np.ndarray:
        return self.contains(0.0)

    # ------------------------------------------------------------------
    # Set operations (per row)
    # ------------------------------------------------------------------
    def intersect(self, other: "IntervalArray") -> "IntervalArray":
        return IntervalArray(
            np.maximum(self.lo, other.lo), np.minimum(self.hi, other.hi)
        )

    def hull(self, other: "IntervalArray") -> "IntervalArray":
        """Row-wise hull; empty rows contribute nothing."""
        lo = np.where(self.is_empty, other.lo, np.where(other.is_empty, self.lo,
                      np.minimum(self.lo, other.lo)))
        hi = np.where(self.is_empty, other.hi, np.where(other.is_empty, self.hi,
                      np.maximum(self.hi, other.hi)))
        return IntervalArray(lo, hi)

    def _propagate_empty(self, *sources: "IntervalArray") -> "IntervalArray":
        dead = self.is_empty
        for s in sources:
            dead = dead | s.is_empty
        if dead.any():
            lo = np.where(dead, _INF, self.lo)
            hi = np.where(dead, -_INF, self.hi)
            return IntervalArray(lo, hi)
        return self

    # ------------------------------------------------------------------
    # Arithmetic (outward rounded, mirrors the scalar kernel)
    # ------------------------------------------------------------------
    def __add__(self, other: "IntervalArray") -> "IntervalArray":
        with _quiet():
            out = IntervalArray(
                _add_bound(self.lo, other.lo, up=False),
                _add_bound(self.hi, other.hi, up=True),
            )
        return out._propagate_empty(self, other)

    def __neg__(self) -> "IntervalArray":
        return IntervalArray(-self.hi, -self.lo)

    def __sub__(self, other: "IntervalArray") -> "IntervalArray":
        return self + (-other)

    def __mul__(self, other: "IntervalArray") -> "IntervalArray":
        # The four corner products, examined in the scalar kernel's
        # candidate order so tie-breaking picks the same corner.
        with _quiet():
            al, ah, bl, bh = self.lo, self.hi, other.lo, other.hi
            p0 = al * bl
            p1 = al * bh
            p2 = ah * bl
            p3 = ah * bh
            for p in (p0, p1, p2, p3):
                p[np.isnan(p)] = 0.0  # 0 * inf
            plo = np.minimum(np.minimum(p0, p1), np.minimum(p2, p3))
            phi_ = np.maximum(np.maximum(p0, p1), np.maximum(p2, p3))
            # first corner (in candidate order) achieving each extremum
            m1, m2 = p1 == plo, p2 == plo
            f0 = p0 == plo
            alo = np.where(f0, al, np.where(m1, al, np.where(m2, ah, ah)))
            blo = np.where(f0, bl, np.where(m1, bh, np.where(m2, bl, bh)))
            x1, x2 = p1 == phi_, p2 == phi_
            g0 = p0 == phi_
            ahi = np.where(g0, al, np.where(x1, al, np.where(x2, ah, ah)))
            bhi = np.where(g0, bl, np.where(x1, bh, np.where(x2, bl, bh)))
            lo = np.where(_mul_exact(alo, blo, plo), plo, _down(plo))
            hi = np.where(_mul_exact(ahi, bhi, phi_), phi_, _up(phi_))
        return IntervalArray(lo, hi)._propagate_empty(self, other)

    def inverse(self) -> "IntervalArray":
        """Row-wise 1/self with the scalar kernel's zero-case analysis."""
        with _quiet():
            inv_hi = 1.0 / self.hi  # used for lower bounds
            inv_lo = 1.0 / self.lo  # used for upper bounds
            zero_point = (self.lo == 0.0) & (self.hi == 0.0)
            zero_at_lo = (self.lo == 0.0) & ~zero_point
            zero_at_hi = (self.hi == 0.0) & ~zero_point
            interior = self.contains(0.0) & ~zero_point & ~zero_at_lo & ~zero_at_hi
            lo = _down(inv_hi)
            hi = _up(inv_lo)
            lo = np.where(zero_at_lo, _down(inv_hi), lo)
            hi = np.where(zero_at_lo, _INF, hi)
            lo = np.where(zero_at_hi, -_INF, lo)
            hi = np.where(zero_at_hi, _up(inv_lo), hi)
            lo = np.where(interior, -_INF, lo)
            hi = np.where(interior, _INF, hi)
            lo = np.where(zero_point, _INF, lo)
            hi = np.where(zero_point, -_INF, hi)
        return IntervalArray(lo, hi)._propagate_empty(self)

    def __truediv__(self, other: "IntervalArray") -> "IntervalArray":
        return (self * other.inverse())._propagate_empty(self, other)

    def __abs__(self) -> "IntervalArray":
        lo = np.where(self.lo >= 0.0, self.lo,
                      np.where(self.hi <= 0.0, -self.hi, 0.0))
        hi = np.where(self.lo >= 0.0, self.hi,
                      np.where(self.hi <= 0.0, -self.lo,
                               np.maximum(-self.lo, self.hi)))
        return IntervalArray(lo, hi)._propagate_empty(self)

    def sqr(self) -> "IntervalArray":
        a = abs(self)
        with _quiet():
            out = IntervalArray(_down(a.lo * a.lo), _up(a.hi * a.hi))
        return out._propagate_empty(self)

    def pow_int(self, n: int) -> "IntervalArray":
        """Integer power with the scalar kernel's monotonicity analysis."""
        n = int(n)
        if n == 0:
            out = IntervalArray.constant(1.0, len(self))
            return out._propagate_empty(self)
        if n < 0:
            return self.pow_int(-n).inverse()._propagate_empty(self)
        with _quiet():
            if n % 2 == 0:
                a = abs(self)
                out = IntervalArray(_down(a.lo ** n), _up(a.hi ** n))
            else:
                out = IntervalArray(_down(self.lo ** n), _up(self.hi ** n))
        return out._propagate_empty(self)

    def pow_scalar(self, n: float) -> "IntervalArray":
        """``self ** n`` for a fixed real exponent (the scalar ``pow``)."""
        if float(n).is_integer():
            return self.pow_int(int(n))
        n = float(n)
        base = self.intersect(IntervalArray.constant(0.0, len(self)).replace_hi(_INF))
        with _quiet():
            # rows with base.lo > 0: exp(n * log(base))
            pos = (base.log() * IntervalArray.constant(n, len(self))).exp()
            if n < 0.0:
                # x**n blows up at 0+: zero-touching rows map to
                # [base.hi**n, +inf) -- flooring the base (the old path)
                # capped the upper bound and violated inclusion.  A base
                # of exactly {0} is outside the domain entirely.
                touch = IntervalArray(
                    np.maximum(0.0, _down(np.power(base.hi, n))),
                    np.full_like(base.hi, _INF),
                )
                at_zero = base.hi == 0.0
            else:
                # rows touching zero: hull with [0, 0] after flooring the base
                floored = IntervalArray(np.maximum(base.lo, 1e-300), base.hi)
                touch = (floored.log() * IntervalArray.constant(n, len(self))).exp()
                touch = IntervalArray(
                    np.minimum(touch.lo, 0.0), np.maximum(touch.hi, 0.0)
                )
                at_zero = np.zeros(len(self), dtype=bool)
        zero_lo = base.lo <= 0.0
        lo = np.where(zero_lo, touch.lo, pos.lo)
        hi = np.where(zero_lo, touch.hi, pos.hi)
        dead = zero_lo & at_zero
        lo = np.where(dead, _INF, lo)
        hi = np.where(dead, -_INF, hi)
        return IntervalArray(lo, hi)._propagate_empty(base)

    def replace_hi(self, hi: float) -> "IntervalArray":
        return IntervalArray(self.lo, np.full_like(self.hi, hi))

    def sqrt(self) -> "IntervalArray":
        s = self.intersect(IntervalArray(np.zeros_like(self.lo),
                                         np.full_like(self.hi, _INF)))
        with _quiet():
            out = IntervalArray(_down(np.sqrt(s.lo)), _up(np.sqrt(s.hi)))
        return out._propagate_empty(s)

    def exp(self) -> "IntervalArray":
        with _quiet():
            out = IntervalArray(
                np.maximum(0.0, _down(np.exp(self.lo))), _up(np.exp(self.hi))
            )
        return out._propagate_empty(self)

    def log(self) -> "IntervalArray":
        s = self.intersect(IntervalArray(np.zeros_like(self.lo),
                                         np.full_like(self.hi, _INF)))
        with _quiet():
            lo = np.where(s.lo == 0.0, -_INF, _down(np.log(s.lo)))
            hi = np.where(s.hi == 0.0, -_INF, _up(np.log(s.hi)))
        return IntervalArray.make(lo, hi)._propagate_empty(s)

    def _trig(self, fn, offset: float) -> "IntervalArray":
        """Shared sin/cos enclosure (vectorized ``_periodic_trig``)."""
        two_pi = 2.0 * math.pi
        with _quiet():
            wide = (self.width() >= two_pi) | ~np.isfinite(self.lo) | ~np.isfinite(self.hi)
            lo_v, hi_v = fn(self.lo), fn(self.hi)
            lo = np.minimum(lo_v, hi_v)
            hi = np.maximum(lo_v, hi_v)
            k_max = np.ceil((self.lo + offset - math.pi / 2.0) / two_pi)
            hit_max = (math.pi / 2.0 - offset) + k_max * two_pi <= self.hi
            k_min = np.ceil((self.lo + offset + math.pi / 2.0) / two_pi)
            hit_min = (-math.pi / 2.0 - offset) + k_min * two_pi <= self.hi
            hi = np.where(hit_max, 1.0, hi)
            lo = np.where(hit_min, -1.0, lo)
            lo = np.where(wide, -1.0, np.maximum(-1.0, _down(lo)))
            hi = np.where(wide, 1.0, np.minimum(1.0, _up(hi)))
        return IntervalArray(lo, hi)._propagate_empty(self)

    def sin(self) -> "IntervalArray":
        return self._trig(np.sin, offset=0.0)

    def cos(self) -> "IntervalArray":
        return self._trig(np.cos, offset=math.pi / 2.0)

    def tan(self) -> "IntervalArray":
        with _quiet():
            k_lo = np.floor((self.lo - math.pi / 2.0) / math.pi)
            k_hi = np.floor((self.hi - math.pi / 2.0) / math.pi)
            # ~isfinite guards degenerate infinite rows: [inf, inf] has
            # width 0 and floor(inf) == floor(inf), so neither clause
            # fires and NaN tan bounds would leak through.
            pole = (
                (self.width() >= math.pi)
                | (k_lo != k_hi)
                | ~np.isfinite(self.lo)
                | ~np.isfinite(self.hi)
            )
            lo = np.where(pole, -_INF, _down(np.tan(self.lo)))
            hi = np.where(pole, _INF, _up(np.tan(self.hi)))
        return IntervalArray(lo, hi)._propagate_empty(self)

    def tanh(self) -> "IntervalArray":
        with _quiet():
            out = IntervalArray(
                np.maximum(-1.0, _down(np.tanh(self.lo))),
                np.minimum(1.0, _up(np.tanh(self.hi))),
            )
        return out._propagate_empty(self)

    def sigmoid(self) -> "IntervalArray":
        def sig(x: np.ndarray) -> np.ndarray:
            # branch exactly like the scalar kernel so results agree
            e = np.exp(np.where(x >= 0, -x, x))
            return np.where(x >= 0, 1.0 / (1.0 + e), e / (1.0 + e))

        with _quiet():
            out = IntervalArray(
                np.maximum(0.0, _down(sig(self.lo))),
                np.minimum(1.0, _up(sig(self.hi))),
            )
        return out._propagate_empty(self)

    def min_with(self, other: "IntervalArray") -> "IntervalArray":
        out = IntervalArray(
            np.minimum(self.lo, other.lo), np.minimum(self.hi, other.hi)
        )
        return out._propagate_empty(self, other)

    def max_with(self, other: "IntervalArray") -> "IntervalArray":
        out = IntervalArray(
            np.maximum(self.lo, other.lo), np.maximum(self.hi, other.hi)
        )
        return out._propagate_empty(self, other)

    def __repr__(self) -> str:
        return f"IntervalArray(n={len(self)})"


class BoxArray:
    """``n`` boxes over one ordered variable tuple, stored as ``(n, dim)``
    ``lo``/``hi`` arrays.  The frontier state of the batched ICP loop."""

    __slots__ = ("names", "lo", "hi", "_index")

    def __init__(self, names: Sequence[str], lo: np.ndarray, hi: np.ndarray):
        self.names = tuple(names)
        self.lo = np.asarray(lo, dtype=float)
        self.hi = np.asarray(hi, dtype=float)
        if self.lo.ndim == 1:
            self.lo = self.lo.reshape(1, -1)
            self.hi = self.hi.reshape(1, -1)
        if self.lo.shape != self.hi.shape or self.lo.shape[1] != len(self.names):
            raise ValueError("bound arrays must be (n, dim) matching names")
        self._index = {n: i for i, n in enumerate(self.names)}

    # ------------------------------------------------------------------
    # Constructors / conversion
    # ------------------------------------------------------------------
    @staticmethod
    def from_boxes(boxes: Sequence[Box], names: Sequence[str] | None = None) -> "BoxArray":
        if not boxes:
            raise ValueError("empty box list")
        names = tuple(names if names is not None else boxes[0].names)
        lo = np.array([[b[k].lo for k in names] for b in boxes], dtype=float)
        hi = np.array([[b[k].hi for k in names] for b in boxes], dtype=float)
        return BoxArray(names, lo, hi)

    @staticmethod
    def from_box(box: Box, names: Sequence[str] | None = None) -> "BoxArray":
        return BoxArray.from_boxes([box], names)

    def row(self, i: int) -> Box:
        return Box({k: Interval(float(self.lo[i, j]), float(self.hi[i, j]))
                    for j, k in enumerate(self.names)})

    def to_boxes(self) -> list[Box]:
        return [self.row(i) for i in range(len(self))]

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return int(self.lo.shape[0])

    @property
    def dim(self) -> int:
        return int(self.lo.shape[1])

    def copy(self) -> "BoxArray":
        return BoxArray(self.names, self.lo.copy(), self.hi.copy())

    def take(self, idx) -> "BoxArray":
        return BoxArray(self.names, self.lo[idx], self.hi[idx])

    def column(self, name: str) -> IntervalArray:
        j = self._index[name]
        return IntervalArray(self.lo[:, j], self.hi[:, j])

    def with_column(self, name: str, iv: IntervalArray) -> "BoxArray":
        """New BoxArray with ``name`` set to ``iv`` (replacing the column
        when the name exists, appending it otherwise) -- the batched
        analogue of ``Box.merged({name: domain})`` for quantifiers."""
        if name in self._index:
            j = self._index[name]
            lo, hi = self.lo.copy(), self.hi.copy()
            lo[:, j] = iv.lo
            hi[:, j] = iv.hi
            return BoxArray(self.names, lo, hi)
        return BoxArray(
            self.names + (name,),
            np.column_stack([self.lo, iv.lo]),
            np.column_stack([self.hi, iv.hi]),
        )

    # ------------------------------------------------------------------
    # Measures
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> np.ndarray:
        return (self.lo > self.hi).any(axis=1)

    def widths(self) -> np.ndarray:
        with _quiet():
            w = self.hi - self.lo
            w[np.isnan(w)] = 0.0
        return np.where(self.is_empty[:, None], 0.0, w)

    def max_width(self) -> np.ndarray:
        if self.dim == 0:
            return np.zeros(len(self))
        return self.widths().max(axis=1)

    def total_width(self) -> np.ndarray:
        """Sum of per-dimension widths, clipped like the scalar fixpoint
        loop's progress measure."""
        if self.dim == 0:
            return np.zeros(len(self))
        return np.minimum(self.widths(), 1e9).sum(axis=1)

    # ------------------------------------------------------------------
    # Branching
    # ------------------------------------------------------------------
    def split_widest(self) -> "BoxArray":
        """Bisect every row along its widest dimension.

        Returns a ``(2n, dim)`` BoxArray: rows ``2i`` and ``2i+1`` are the
        two halves of input row ``i`` (cut at the scalar midpoint rule).
        """
        n, d = self.lo.shape
        j = np.argmax(self.widths(), axis=1)
        rows = np.arange(n)
        lo_j, hi_j = self.lo[rows, j], self.hi[rows, j]
        with _quiet():
            mid = 0.5 * (lo_j + hi_j)
            # scalar Interval.midpoint fallbacks for unbounded/overflowing rows
            mid = np.where(np.isfinite(mid), mid, lo_j + 0.5 * (hi_j - lo_j))
            mid = np.where(np.isfinite(mid), mid,
                           np.where(np.isfinite(lo_j), lo_j + 1.0,
                                    np.where(np.isfinite(hi_j), hi_j - 1.0, 0.0)))
        mid = np.minimum(np.maximum(mid, lo_j), hi_j)
        lo2 = np.repeat(self.lo, 2, axis=0)
        hi2 = np.repeat(self.hi, 2, axis=0)
        lo2[1::2, :][rows, j] = mid  # right halves start at the cut
        hi2[0::2, :][rows, j] = mid  # left halves end at the cut
        return BoxArray(self.names, lo2, hi2)

    def __repr__(self) -> str:
        return f"BoxArray(n={len(self)}, dim={self.dim})"
