"""Named interval boxes (axis-aligned hyper-rectangles).

A :class:`Box` maps variable names to :class:`~repro.intervals.Interval`
values.  Boxes are the search states of the ICP branch-and-prune loop
(paper Section III-A) and the witnesses returned by delta-sat answers.
"""

from __future__ import annotations

import math
import random
from typing import Iterable, Iterator, Mapping

from .interval import Interval

__all__ = ["Box"]


class Box(Mapping[str, Interval]):
    """An immutable mapping ``variable name -> Interval``.

    The box is *empty* if any of its component intervals is empty.
    """

    __slots__ = ("_ivs",)

    def __init__(self, ivs: Mapping[str, Interval] | Iterable[tuple[str, Interval]]):
        self._ivs: dict[str, Interval] = dict(ivs)

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def from_bounds(bounds: Mapping[str, tuple[float, float]]) -> "Box":
        """Build a box from ``{name: (lo, hi)}``."""
        return Box({k: Interval.make(lo, hi) for k, (lo, hi) in bounds.items()})

    @staticmethod
    def from_point(point: Mapping[str, float]) -> "Box":
        """Degenerate box containing a single point."""
        return Box({k: Interval.point(v) for k, v in point.items()})

    # ------------------------------------------------------------------
    # Mapping protocol
    # ------------------------------------------------------------------
    def __getitem__(self, name: str) -> Interval:
        return self._ivs[name]

    def __iter__(self) -> Iterator[str]:
        return iter(self._ivs)

    def __len__(self) -> int:
        return len(self._ivs)

    def __contains__(self, name: object) -> bool:
        return name in self._ivs

    @property
    def names(self) -> list[str]:
        return list(self._ivs)

    # ------------------------------------------------------------------
    # Predicates and measures
    # ------------------------------------------------------------------
    @property
    def is_empty(self) -> bool:
        return any(iv.is_empty for iv in self._ivs.values())

    def max_width(self) -> float:
        """Width of the widest dimension (0 for point/empty boxes)."""
        if self.is_empty or not self._ivs:
            return 0.0
        return max(iv.width() for iv in self._ivs.values())

    def widest_dimension(self) -> str:
        """Name of the dimension with the largest width."""
        if not self._ivs:
            raise ValueError("widest_dimension of dimensionless box")
        return max(self._ivs, key=lambda k: self._ivs[k].width())

    def volume(self) -> float:
        """Product of widths (can overflow to inf for large boxes)."""
        if self.is_empty:
            return 0.0
        vol = 1.0
        for iv in self._ivs.values():
            vol *= iv.width()
        return vol

    def contains_point(self, point: Mapping[str, float]) -> bool:
        """True when every named coordinate of ``point`` lies in the box.

        Coordinates of the box that are missing from ``point`` are
        ignored; coordinates of ``point`` missing from the box raise.
        """
        return all(self._ivs[k].contains(v) for k, v in point.items())

    def contains_box(self, other: "Box") -> bool:
        return all(self._ivs[k].contains_interval(iv) for k, iv in other._ivs.items())

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def with_interval(self, name: str, iv: Interval) -> "Box":
        new = dict(self._ivs)
        new[name] = iv
        return Box(new)

    def without(self, *names: str) -> "Box":
        return Box({k: v for k, v in self._ivs.items() if k not in names})

    def restrict(self, names: Iterable[str]) -> "Box":
        keep = set(names)
        return Box({k: v for k, v in self._ivs.items() if k in keep})

    def merged(self, other: "Box | Mapping[str, Interval]") -> "Box":
        """New box with ``other``'s dimensions added/overriding."""
        new = dict(self._ivs)
        new.update(dict(other))
        return Box(new)

    def intersect(self, other: "Box") -> "Box":
        """Componentwise intersection over shared names; unshared names kept."""
        new = dict(self._ivs)
        for k, iv in dict(other).items():
            new[k] = new[k].intersect(iv) if k in new else iv
        return Box(new)

    def hull(self, other: "Box") -> "Box":
        new = dict(self._ivs)
        for k, iv in dict(other).items():
            new[k] = new[k].hull(iv) if k in new else iv
        return Box(new)

    def split(self, name: str | None = None) -> tuple["Box", "Box"]:
        """Bisect along ``name`` (default: widest dimension)."""
        if name is None:
            name = self.widest_dimension()
        left, right = self._ivs[name].split()
        return self.with_interval(name, left), self.with_interval(name, right)

    def midpoint(self) -> dict[str, float]:
        return {k: iv.midpoint() for k, iv in self._ivs.items()}

    def corners(self) -> list[dict[str, float]]:
        """All 2^n corner points (n = dimension); use only for small n."""
        names = self.names
        pts: list[dict[str, float]] = [{}]
        for name in names:
            iv = self._ivs[name]
            ends = [iv.lo] if iv.is_point else [iv.lo, iv.hi]
            pts = [dict(p, **{name: e}) for p in pts for e in ends]
        return pts

    def sample_random(self, rng: random.Random | None = None) -> dict[str, float]:
        """Uniform random point inside the box (requires bounded box)."""
        rng = rng or random.Random()
        pt = {}
        for k, iv in self._ivs.items():
            if iv.is_empty:
                raise ValueError(f"cannot sample empty dimension {k!r}")
            lo = iv.lo if math.isfinite(iv.lo) else -1e6
            hi = iv.hi if math.isfinite(iv.hi) else 1e6
            pt[k] = rng.uniform(lo, hi)
        return pt

    def sample_grid(self, per_dim: int) -> list[dict[str, float]]:
        """Cartesian grid of ``per_dim`` samples per dimension."""
        pts: list[dict[str, float]] = [{}]
        for k, iv in self._ivs.items():
            vals = iv.sample(per_dim)
            pts = [dict(p, **{k: v}) for p in pts for v in vals]
        return pts

    def inflate(self, eps: float) -> "Box":
        return Box({k: iv.inflate(eps) for k, iv in self._ivs.items()})

    # ------------------------------------------------------------------
    # Dunder utilities
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return self._ivs == other._ivs

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, iv.lo, iv.hi) for k, iv in self._ivs.items())))

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}=[{iv.lo:.6g}, {iv.hi:.6g}]" for k, iv in self._ivs.items())
        return f"Box({inner})"
