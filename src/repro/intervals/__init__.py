"""Interval arithmetic substrate (S1 in DESIGN.md).

Outward-rounded :class:`Interval` scalars and named :class:`Box`
hyper-rectangles, the numerical foundation of the delta-decision
procedure of paper Section III.
"""

from .interval import EMPTY, Interval
from .box import Box
from .array import BoxArray, IntervalArray

__all__ = ["Interval", "Box", "EMPTY", "IntervalArray", "BoxArray"]
