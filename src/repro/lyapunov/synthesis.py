"""Lyapunov function synthesis and certification with delta-decisions.

Paper Section IV-C: two delta-decision routes to stability analysis.

(i)  **Synthesis** (after [57]): pick a template ``V_c(x)``, then solve

        exists c . forall x in (X minus ball(eq, r)) .
            V_c(x) >= eps_v * |x - eq|^2   and   dV_c/dt(x) <= -eps_dv * |x - eq|^2

     with the CEGIS exists-forall solver.  The epsilon margins make the
     conditions robust (delta-weakening cannot flip them), which is the
     spirit of the numerically-robust induction rules of [58].

(ii) **Certification**: given a concrete ``V``, verify the same
     conditions by delta-deciding their *negation*; UNSAT certifies the
     Lyapunov conditions exactly (one-sided guarantee of Theorem 1).

Also provided: a region-of-attraction estimate by bisection on the
sublevel value ``V <= level`` inside the verified region.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.expr import Const, Expr
from repro.expr import var as _var
from repro.intervals import Box
from repro.logic import And, Atom, Formula, Or
from repro.odes import ODESystem
from repro.solver import DeltaSolver, ExistsForallSolver, Status

from .templates import Template, diagonal_template

__all__ = ["LyapunovResult", "LyapunovAnalyzer"]


@dataclass
class LyapunovResult:
    """Outcome of a synthesis or certification run."""

    status: Status
    V: Expr | None = None
    coefficients: dict[str, float] = field(default_factory=dict)
    iterations: int = 0
    counterexample: dict[str, float] | None = None

    def __bool__(self) -> bool:
        return self.status is Status.DELTA_SAT


def _radius_sq(names, equilibrium: Mapping[str, float]) -> Expr:
    total: Expr = Const(0.0)
    for n in names:
        d = _var(n) - Const(float(equilibrium.get(n, 0.0)))
        total = total + d * d
    return total


class LyapunovAnalyzer:
    """Stability analysis of an ODE system around an equilibrium.

    Parameters
    ----------
    system:
        The ODE system (parameters at their default values).
    region:
        Box around the equilibrium on which stability is analyzed.
    equilibrium:
        The equilibrium point (default: origin).  A sanity check
        verifies that the vector field is (nearly) zero there.
    exclusion_radius:
        Radius ``r`` of the ball around the equilibrium excluded from
        the conditions (V and dV/dt both vanish at the equilibrium, so
        strict conditions can only hold outside a neighborhood).
    eps_v, eps_dv:
        Robustness margins: require ``V >= eps_v |x-e|^2`` and
        ``dV/dt <= -eps_dv |x-e|^2`` on the annulus.
    """

    def __init__(
        self,
        system: ODESystem,
        region: Box | Mapping[str, tuple[float, float]],
        equilibrium: Mapping[str, float] | None = None,
        exclusion_radius: float = 0.05,
        eps_v: float = 1e-3,
        eps_dv: float = 1e-4,
        delta: float = 1e-3,
        equilibrium_tol: float = 1e-6,
        frontier_size: int = 64,
        shards: int = 1,
        shard_backend: object = "process",
        paving_store: object = None,
        warm_start: bool = True,
        kernel: str = "numpy",
    ):
        # inline default parameter values: the exists-forall conditions
        # must mention only states and template coefficients
        self.system = system.substitute_params() if system.params else system
        self.region = region if isinstance(region, Box) else Box.from_bounds(dict(region))
        self.equilibrium = dict(equilibrium or {n: 0.0 for n in system.state_names})
        self.r = float(exclusion_radius)
        self.eps_v = float(eps_v)
        self.eps_dv = float(eps_dv)
        self.delta = float(delta)
        self.frontier_size = int(frontier_size)
        self.shards = int(shards)
        self.shard_backend = shard_backend
        self.paving_store = paving_store
        self.warm_start = warm_start
        self.kernel = kernel

        residual = system.eval_field(self.equilibrium)
        worst = max(abs(v) for v in residual.values())
        if worst > equilibrium_tol:
            raise ValueError(
                f"point is not an equilibrium (|f| = {worst:.3g} > {equilibrium_tol})"
            )

    # ------------------------------------------------------------------
    def conditions(self, V: Expr) -> Formula:
        """The robust Lyapunov conditions on the annulus, as a formula
        over the state variables (coefficients may remain free)."""
        names = self.system.state_names
        rsq = _radius_sq(names, self.equilibrium)
        vdot = self.system.lie_derivative(V)
        inside_annulus = Atom(rsq - Const(self.r * self.r), strict=False)
        pos = Atom(V - Const(self.eps_v) * rsq, strict=False)
        dec = Atom(-vdot - Const(self.eps_dv) * rsq, strict=False)
        # (|x-e|^2 >= r^2) -> (pos /\ dec)
        return Or(inside_annulus.negate(), And(pos, dec))

    def violation(self, V: Expr) -> Formula:
        """Negation of :meth:`conditions` (the refutation query)."""
        return self.conditions(V).negate()

    # ------------------------------------------------------------------
    def synthesize(
        self,
        template: Template | None = None,
        coeff_bound: float = 10.0,
        max_iterations: int = 40,
        seed: int = 0,
    ) -> LyapunovResult:
        """CEGIS synthesis of a Lyapunov function from a template.

        Default template: diagonal quadratic with coefficients in
        ``[eps, coeff_bound]`` (positive diagonal is necessary anyway).
        """
        template = template or diagonal_template(
            self.system.state_names, self.equilibrium
        )
        phi = self.conditions(template.expr)
        lo = 1e-2
        param_box = Box.from_bounds({c: (lo, coeff_bound) for c in template.coefficients})
        ef = ExistsForallSolver(
            delta=self.delta, max_iterations=max_iterations, seed=seed,
            frontier_size=self.frontier_size,
            shards=self.shards, shard_backend=self.shard_backend,
            paving_store=self.paving_store, warm_start=self.warm_start,
            kernel=self.kernel,
        )
        res = ef.solve(phi, param_box, self.region)
        if res.status is Status.DELTA_SAT:
            coeffs = dict(res.candidate)
            return LyapunovResult(
                Status.DELTA_SAT,
                V=template.instantiate(coeffs),
                coefficients=coeffs,
                iterations=res.iterations,
            )
        return LyapunovResult(res.status, iterations=res.iterations)

    # ------------------------------------------------------------------
    def certify(self, V: Expr, max_boxes: int = 200_000) -> LyapunovResult:
        """Certify a concrete candidate ``V`` by refutation.

        UNSAT of the violation formula proves the robust Lyapunov
        conditions hold everywhere on the annulus (exact, one-sided).
        """
        solver = DeltaSolver(
            delta=self.delta, max_boxes=max_boxes,
            frontier_size=self.frontier_size,
            shards=self.shards, shard_backend=self.shard_backend,
            paving_store=self.paving_store, warm_start=self.warm_start,
            kernel=self.kernel,
        )
        res = solver._solve_impl(self.violation(V), self.region)
        if res.status is Status.UNSAT:
            return LyapunovResult(Status.DELTA_SAT, V=V)
        if res.status is Status.DELTA_SAT:
            return LyapunovResult(
                Status.UNSAT, V=V, counterexample=res.witness
            )
        return LyapunovResult(Status.UNKNOWN, V=V)

    # ------------------------------------------------------------------
    def region_of_attraction(
        self,
        V: Expr,
        levels: int = 20,
        max_boxes: int = 30_000,
    ) -> float:
        """Largest verified sublevel value ``c``: the set ``{V <= c}``
        (intersected with the region) is forward-invariant and attracted
        to the equilibrium.

        We bisect on ``c``, checking by refutation that no point of the
        region has ``V(x) <= c`` while violating the Lyapunov conditions
        *or* touching the region boundary (so the sublevel set is
        interior).  Returns 0.0 if nothing could be verified.
        """
        names = self.system.state_names
        # V range over region for the bisection bracket
        v_hi = V.eval_interval(dict(self.region)).hi
        # resolve a named shard backend once: the bisection makes up to
        # ~2*levels sharded solves, and the driver leaves injected
        # instances running, so they all reuse one worker pool
        backend = self.shard_backend
        owns_pool = self.shards > 1 and isinstance(backend, str)
        if owns_pool:
            from repro.service.backends import make_backend

            backend = make_backend(self.shard_backend, self.shards)
        solver = DeltaSolver(
            delta=self.delta, max_boxes=max_boxes,
            frontier_size=self.frontier_size,
            shards=self.shards, shard_backend=backend,
            paving_store=self.paving_store, warm_start=self.warm_start,
            kernel=self.kernel,
        )

        def boundary_touch(c: float) -> Formula:
            # exists x: V(x) <= c and x on the region boundary
            parts = []
            for n in names:
                iv = self.region[n]
                parts.append(Atom(Const(iv.lo) - _var(n), strict=False))
                parts.append(Atom(_var(n) - Const(iv.hi), strict=False))
            return And(Atom(Const(c) - V, strict=False), Or(*parts))

        def violated(c: float) -> bool:
            inside = Atom(Const(c) - V, strict=False)
            bad = And(inside, self.violation(V))
            if solver._solve_impl(bad, self.region).status is not Status.UNSAT:
                return True
            return solver._solve_impl(boundary_touch(c), self.region).status is not Status.UNSAT

        try:
            lo_ok, hi_bad = 0.0, float(v_hi)
            if violated(hi_bad):
                # bisection
                for _ in range(levels):
                    mid = 0.5 * (lo_ok + hi_bad)
                    if violated(mid):
                        hi_bad = mid
                    else:
                        lo_ok = mid
                return lo_ok
            return hi_bad
        finally:
            if owns_pool:
                backend.shutdown(wait=True)
