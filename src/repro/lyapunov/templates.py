"""Lyapunov function templates.

Paper Section IV-C(i): "Given a template function, we can synthesize a
Lyapunov function by solving exists-forall formulas".  A template is an
expression in the state variables whose unknown coefficients become the
existential variables of the CEGIS loop.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from repro.expr import Const, Expr, var

__all__ = ["Template", "quadratic_template", "diagonal_template", "polynomial_template"]


class Template:
    """An expression with unknown coefficients.

    Attributes
    ----------
    expr:
        The template expression; mentions state variables and the
        coefficient variables.
    coefficients:
        Names of the unknown coefficients.
    """

    def __init__(self, expr: Expr, coefficients: Sequence[str]):
        self.expr = expr
        self.coefficients = list(coefficients)

    def instantiate(self, values: Mapping[str, float]) -> Expr:
        """Substitute coefficient values, leaving a state-only function."""
        missing = set(self.coefficients) - set(values)
        if missing:
            raise KeyError(f"missing coefficients: {sorted(missing)}")
        return self.expr.subs({c: float(values[c]) for c in self.coefficients}).simplify()

    def __repr__(self) -> str:
        return f"Template({self.expr}, coeffs={self.coefficients})"


def _shifted(name: str, equilibrium: Mapping[str, float] | None) -> Expr:
    x = var(name)
    if equilibrium and equilibrium.get(name, 0.0) != 0.0:
        return x - Const(float(equilibrium[name]))
    return x


def quadratic_template(
    state_names: Sequence[str],
    equilibrium: Mapping[str, float] | None = None,
    prefix: str = "c",
) -> Template:
    """Full quadratic form ``V = sum_{i<=j} c_ij (x_i - e_i)(x_j - e_j)``."""
    names = list(state_names)
    coeffs: list[str] = []
    total: Expr = Const(0.0)
    for i, ni in enumerate(names):
        for j in range(i, len(names)):
            nj = names[j]
            cname = f"{prefix}_{ni}_{nj}"
            coeffs.append(cname)
            total = total + var(cname) * _shifted(ni, equilibrium) * _shifted(nj, equilibrium)
    return Template(total, coeffs)


def diagonal_template(
    state_names: Sequence[str],
    equilibrium: Mapping[str, float] | None = None,
    prefix: str = "c",
) -> Template:
    """Diagonal quadratic ``V = sum_i c_i (x_i - e_i)^2``.

    The natural template for mass-action networks, where weighted
    quadratic (or entropy-like) functions certify stability [60].
    """
    names = list(state_names)
    coeffs = [f"{prefix}_{n}" for n in names]
    total: Expr = Const(0.0)
    for n, c in zip(names, coeffs):
        d = _shifted(n, equilibrium)
        total = total + var(c) * d * d
    return Template(total, coeffs)


def polynomial_template(
    state_names: Sequence[str],
    degree: int,
    equilibrium: Mapping[str, float] | None = None,
    prefix: str = "c",
    even_only: bool = True,
) -> Template:
    """Dense polynomial template of total degree <= ``degree``.

    Monomials of degree 0 and 1 are omitted (V must vanish at the
    equilibrium with positive definite shape); with ``even_only`` only
    even total degrees are used, which suffices for symmetric basins.
    """
    if degree < 2:
        raise ValueError("degree must be >= 2")
    names = list(state_names)
    coeffs: list[str] = []
    total: Expr = Const(0.0)
    for total_deg in range(2, degree + 1):
        if even_only and total_deg % 2 == 1:
            continue
        for combo in itertools.combinations_with_replacement(names, total_deg):
            cname = f"{prefix}_" + "_".join(combo)
            coeffs.append(cname)
            mono: Expr = Const(1.0)
            for n in combo:
                mono = mono * _shifted(n, equilibrium)
            total = total + var(cname) * mono
    return Template(total, coeffs)
