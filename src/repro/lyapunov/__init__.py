"""Lyapunov stability analysis via delta-decisions (S9 in DESIGN.md).

Template-based synthesis through the exists-forall CEGIS solver and
refutation-based certification, per paper Section IV-C and [57], [58].
"""

from .templates import (
    Template,
    diagonal_template,
    polynomial_template,
    quadratic_template,
)
from .synthesis import LyapunovAnalyzer, LyapunovResult

__all__ = [
    "Template",
    "quadratic_template",
    "diagonal_template",
    "polynomial_template",
    "LyapunovAnalyzer",
    "LyapunovResult",
]
