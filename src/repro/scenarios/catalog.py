"""The scenario catalog: named, parameterized bindings of the model zoo.

A :class:`Scenario` packages everything needed to reproduce one analysis
of the paper -- a declarative model recipe, a task kind, its query, the
solver/simulation option defaults, and catalog metadata (tags, paper
section, the expected verdict) -- as plain JSON-able data.  Entries
register themselves with :func:`register_scenario` and are looked up by
name (``repro scenarios list`` / :func:`get_scenario`), so every future
workload is a *data* change, not a code change.

Parameterization uses ``{"$param": "name"}`` placeholder markers (or the
``"$name"`` string shorthand) anywhere inside the model recipe or query;
:meth:`Scenario.spec` substitutes the declared defaults, overridden per
call, and returns a ready-to-run :class:`~repro.api.spec.TaskSpec`.
:class:`~repro.scenarios.sweep.ScenarioSweep` expands grids, seeded
random draws and patient cohorts over the same parameters.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping

from repro.api.spec import SimOptions, SolverOptions, TaskSpec

__all__ = [
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "find_scenarios",
    "core_scenario_names",
    "corpus_families",
    "scenario_table",
]

#: The placeholder marker key: ``{"$param": "dose"}`` substitutes the
#: value of parameter ``dose`` at :meth:`Scenario.spec` time.
PARAM_KEY = "$param"

_REGISTRY: dict[str, "Scenario"] = {}


def _substitute(value: Any, params: Mapping[str, Any]) -> Any:
    """Recursively replace ``$param`` placeholders with bound values."""
    if isinstance(value, Mapping):
        if set(value.keys()) == {PARAM_KEY}:
            name = value[PARAM_KEY]
            if name not in params:
                raise ValueError(f"scenario placeholder references unknown parameter {name!r}")
            return params[name]
        return {k: _substitute(v, params) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_substitute(v, params) for v in value]
    if isinstance(value, str) and value.startswith("$") and value[1:] in params:
        return params[value[1:]]
    return value


def _fmt_value(v: Any) -> str:
    """Deterministic short rendering of a parameter value for names."""
    if isinstance(v, float):
        return format(v, ".6g")
    return str(v)


@dataclass
class Scenario:
    """One catalog entry: a parameterized, declarative analysis recipe.

    Attributes
    ----------
    name:
        Unique catalog key (kebab-case by convention).
    summary:
        One-line description shown in listings and the docs gallery.
    task:
        Registered task kind (see ``repro list-tasks``).
    model:
        Declarative model recipe (anything ``Model.from_dict`` accepts:
        ``{"builtin": ...}``, ``{"file": ...}`` or an inline dict); may
        contain ``$param`` placeholders.
    query:
        Task query template; may contain ``$param`` placeholders.
    solver / sim:
        Option-group defaults as plain dicts (subsets of
        :class:`SolverOptions` / :class:`SimOptions` fields).
    seed:
        Default RNG seed baked into the entry (``None`` defers to the
        engine default).
    params:
        Declared parameter names with their default values; the only
        names :meth:`spec` accepts as overrides.
    tags:
        Free-form labels for filtering (``cardiac``, ``toy``, ...).
    paper_section:
        Where in the source paper this scenario comes from.
    expected:
        The :class:`~repro.status.AnalysisStatus` value the *default*
        parameterization is expected to report, or ``None``.
    description:
        Longer prose for ``repro scenarios show`` and the docs gallery.
    family:
        Corpus family the entry belongs to (``"sbml"``,
        ``"mass-action"``, ...).  Hand-written core entries leave it
        empty; ingested/generated entries set it so tooling can scope
        to the core catalog or group the corpus by provenance.
    """

    name: str
    summary: str
    task: str
    model: dict[str, Any]
    query: dict[str, Any] = field(default_factory=dict)
    solver: dict[str, Any] = field(default_factory=dict)
    sim: dict[str, Any] = field(default_factory=dict)
    seed: int | None = None
    params: dict[str, Any] = field(default_factory=dict)
    tags: tuple[str, ...] = ()
    paper_section: str = ""
    expected: str | None = None
    description: str = ""
    family: str = ""

    def __post_init__(self):
        """Normalize JSON-sourced field shapes (lists, numeric seeds)."""
        self.tags = tuple(str(t) for t in self.tags)
        if self.seed is not None:
            self.seed = int(self.seed)

    # ------------------------------------------------------------------
    def spec(self, seed: int | None = None, **overrides: Any) -> TaskSpec:
        """Bind parameters and return a ready-to-run :class:`TaskSpec`.

        Parameters
        ----------
        seed:
            Overrides the entry's default seed when given.
        overrides:
            Parameter overrides; only names declared in ``params`` are
            accepted.
        """
        unknown = set(overrides) - set(self.params)
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no parameter(s) {sorted(unknown)}; "
                f"declared: {sorted(self.params)}"
            )
        bound = {**self.params, **overrides}
        name = self.name
        if overrides:
            # every explicitly-bound parameter is labeled (even when it
            # equals the default), so sweep points are distinguishable
            inner = ", ".join(
                f"{k}={_fmt_value(overrides[k])}" for k in sorted(overrides)
            )
            name = f"{self.name}[{inner}]"
        return TaskSpec(
            task=self.task,
            model=_substitute(dict(self.model), bound),
            query=_substitute(dict(self.query), bound),
            solver=SolverOptions.from_dict(self.solver),
            sim=SimOptions.from_dict(self.sim),
            seed=self.seed if seed is None else int(seed),
            name=name,
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON-able catalog form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "summary": self.summary,
            "task": self.task,
            "model": dict(self.model),
            "query": dict(self.query),
            "solver": dict(self.solver),
            "sim": dict(self.sim),
            "seed": self.seed,
            "params": dict(self.params),
            "tags": list(self.tags),
            "paper_section": self.paper_section,
            "expected": self.expected,
            "description": self.description,
            "family": self.family,
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "Scenario":
        """Rebuild a scenario from its :meth:`to_dict` form."""
        for key in ("name", "summary", "task", "model"):
            if key not in d:
                raise ValueError(f"scenario dict needs a {key!r} field")
        return cls(
            name=str(d["name"]),
            summary=str(d["summary"]),
            task=str(d["task"]),
            model=dict(d["model"]),
            query=dict(d.get("query", {})),
            solver=dict(d.get("solver", {})),
            sim=dict(d.get("sim", {})),
            seed=None if d.get("seed") is None else int(d["seed"]),
            params=dict(d.get("params", {})),
            tags=tuple(d.get("tags", ())),
            paper_section=str(d.get("paper_section", "")),
            expected=None if d.get("expected") is None else str(d["expected"]),
            description=str(d.get("description", "")),
            family=str(d.get("family", "")),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the catalog entry to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        """Parse a catalog entry from JSON text."""
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# the registry
# ----------------------------------------------------------------------


def register_scenario(
    entry: "Scenario | Callable[[], Scenario]",
) -> "Scenario | Callable[[], Scenario]":
    """Add a catalog entry to the registry.

    Usable two ways: call it with a :class:`Scenario` instance, or
    decorate a zero-argument factory function returning one (the
    function is invoked once at registration time)::

        @register_scenario
        def sir_outbreak() -> Scenario:
            return Scenario(name="sir-outbreak", ...)

    Either way the original argument is returned, so the decorator is
    transparent.
    """
    scenario = entry() if callable(entry) else entry
    if not isinstance(scenario, Scenario):
        raise TypeError(f"cannot register {type(scenario).__name__} as a Scenario")
    if not scenario.name:
        raise ValueError("a Scenario must have a nonempty name")
    if scenario.name in _REGISTRY:
        raise ValueError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return entry


def get_scenario(name: str) -> Scenario:
    """Look up a catalog entry by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(_REGISTRY)}"
        ) from None


def scenario_names() -> list[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> Iterator[Scenario]:
    """Iterate the catalog in name order."""
    for name in sorted(_REGISTRY):
        yield _REGISTRY[name]


def find_scenarios(
    tag: str | None = None,
    task: str | None = None,
    family: str | None = None,
) -> list[Scenario]:
    """Filter the catalog by tag, task kind and/or corpus family.

    ``family=""`` selects the hand-written core entries (no family).
    """
    out = []
    for s in all_scenarios():
        if tag is not None and tag not in s.tags:
            continue
        if task is not None and s.task != task:
            continue
        if family is not None and s.family != family:
            continue
        out.append(s)
    return out


def core_scenario_names() -> list[str]:
    """Names of the hand-written core entries (no corpus family)."""
    return [s.name for s in all_scenarios() if not s.family]


def corpus_families() -> dict[str, int]:
    """Registered corpus families mapped to their entry counts."""
    counts: dict[str, int] = {}
    for s in all_scenarios():
        if s.family:
            counts[s.family] = counts.get(s.family, 0) + 1
    return counts


def scenario_table() -> list[tuple[str, str, str]]:
    """``(name, task, one-line summary)`` rows for the CLI listing."""
    return [(s.name, s.task, s.summary) for s in all_scenarios()]
