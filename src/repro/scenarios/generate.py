"""Procedural scenario families: seed-deterministic corpus growth.

Hand-written catalog entries are a gallery; this module turns them into
a *population*.  Each family is a pure function of ``(seed, count)``
that returns fully-formed, JSON-able :class:`~repro.scenarios.catalog.
Scenario` entries — byte-deterministic under a fixed seed, so the
committed corpus (``data/corpus.json``) can be regenerated and diffed.

Families
--------
``mass-action``
    Random conservative reaction networks (conversion chains and
    cycles) rendered as inline native ODE models, with
    conservation-law-aware state bounds ``[0, total mass]``.  Chain
    networks drain their head species (ascent impossible → falsified);
    cycle networks feed it back (ascent feasible → delta-sat).
``switched``
    Thermostat variants of the hybrid zoo: jittered switch thresholds
    and heater gains, alternating reach-synthesis and robustness
    queries.
``cardiac-perturbed``
    Perturbed-parameter cohorts of the Fenton-Karma / Bueno-Cherry-
    Fenton dome queries (the paper's cardiac case study).
``ias-perturbed``
    Perturbed burden caps and initial tumor loads for the prostate IAS
    cohort, scored with small Bayesian SMC runs.

The module also hosts :class:`ReactionNetwork` — a writable reaction-
network description whose :meth:`ReactionNetwork.to_sbml` /
:meth:`ReactionNetwork.to_ode` pair mirrors ``repro.io.sbml`` exactly,
which is what makes the SBML round-trip property tests possible — and
:func:`write_sbml_corpus`, which emits the committed SBML file corpus
consumed by ``repro.scenarios.ingest``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable

from repro.expr import Binary, Const, Expr, Unary, Var, parse_expr
from repro.io.native import ode_to_dict
from repro.odes import ODESystem

from .catalog import Scenario

__all__ = [
    "Reaction",
    "ReactionNetwork",
    "FAMILIES",
    "DEFAULT_SEED",
    "family_names",
    "generate_family",
    "generate_corpus",
    "random_network",
    "write_sbml_corpus",
]

#: Seed used for the committed corpus (``data/corpus.json``).
DEFAULT_SEED = 2020


# ----------------------------------------------------------------------
# reaction networks and the SBML writer
# ----------------------------------------------------------------------


@dataclass
class Reaction:
    """One reaction: stoichiometric reactants/products plus a rate law.

    The rate is an infix expression string over species and parameter
    names (``"k0 * s0"``), parsed with the repro expression grammar.
    """

    rid: str
    reactants: dict[str, float]
    products: dict[str, float]
    rate: str


@dataclass
class ReactionNetwork:
    """A writable reaction-network model (the inverse of ``parse_sbml``).

    Attributes
    ----------
    name:
        Model id, used as the SBML ``<model id>`` and the ODE name.
    species:
        Ordered species ids; order fixes the state order of the ODE.
    initial:
        Initial concentration per species (must cover every species).
    params:
        Rate-law parameter values.
    reactions:
        The reaction list, applied in order.
    rate_rules:
        Extra ``rateRule`` contributions per species (infix strings).
    boundary:
        Species held constant (SBML ``boundaryCondition="true"``);
        substituted by their initial values, like the reader does.
    compartment_size:
        Size of the single ``cell`` compartment; rates are divided by
        it when it is not 1.0, mirroring the reader's scaling.
    """

    name: str
    species: list[str]
    initial: dict[str, float]
    params: dict[str, float] = field(default_factory=dict)
    reactions: list[Reaction] = field(default_factory=list)
    rate_rules: dict[str, str] = field(default_factory=dict)
    boundary: frozenset[str] = frozenset()
    compartment_size: float = 1.0

    # -- native form ---------------------------------------------------
    def to_ode(self) -> tuple[ODESystem, dict[str, float]]:
        """Build the ODE system + initial conditions.

        Accumulation, scaling, boundary substitution and simplification
        happen in exactly the order ``repro.io.sbml.parse_sbml`` uses,
        so ``parse_sbml(net.to_sbml())`` reproduces this system
        expression-for-expression.
        """
        derivs: dict[str, Expr] = {
            s: Const(0.0) for s in self.species if s not in self.boundary
        }
        for rx in self.reactions:
            kinetic = parse_expr(rx.rate)
            for sid, stoich in rx.reactants.items():
                if sid in derivs:
                    derivs[sid] = derivs[sid] - Const(float(stoich)) * kinetic
            for sid, stoich in rx.products.items():
                if sid in derivs:
                    derivs[sid] = derivs[sid] + Const(float(stoich)) * kinetic
        for sid, text in self.rate_rules.items():
            derivs[sid] = derivs[sid] + parse_expr(text)
        size = float(self.compartment_size)
        scaled = {
            sid: (e if size == 1.0 else e / Const(size)) for sid, e in derivs.items()
        }
        if self.boundary:
            bsubs = {b: self.initial[b] for b in self.boundary}
            scaled = {k: e.subs(bsubs) for k, e in scaled.items()}
        system = ODESystem(
            {k: e.simplify() for k, e in scaled.items()},
            dict(self.params),
            name=self.name,
        )
        init = {s: self.initial[s] for s in system.state_names}
        return system, init

    # -- SBML form -----------------------------------------------------
    def to_sbml(self) -> str:
        """Serialize to SBML text that ``parse_sbml`` reads back."""
        lines = [
            '<?xml version="1.0" encoding="UTF-8"?>',
            '<sbml xmlns="http://www.sbml.org/sbml/level2/version4" '
            'level="2" version="4">',
            f'  <model id="{self.name}">',
            "    <listOfCompartments>",
            f'      <compartment id="cell" size="{self.compartment_size!r}"/>',
            "    </listOfCompartments>",
            "    <listOfSpecies>",
        ]
        for sid in self.species:
            bnd = ' boundaryCondition="true"' if sid in self.boundary else ""
            lines.append(
                f'      <species id="{sid}" compartment="cell" '
                f'initialConcentration="{self.initial[sid]!r}"{bnd}/>'
            )
        lines.append("    </listOfSpecies>")
        if self.params:
            lines.append("    <listOfParameters>")
            for pid, value in self.params.items():
                lines.append(f'      <parameter id="{pid}" value="{value!r}"/>')
            lines.append("    </listOfParameters>")
        if self.reactions:
            lines.append("    <listOfReactions>")
            for rx in self.reactions:
                lines.append(f'      <reaction id="{rx.rid}" reversible="false">')
                for section, side in (
                    ("listOfReactants", rx.reactants),
                    ("listOfProducts", rx.products),
                ):
                    if side:
                        lines.append(f"        <{section}>")
                        for sid, stoich in side.items():
                            lines.append(
                                f'          <speciesReference species="{sid}" '
                                f'stoichiometry="{float(stoich)!r}"/>'
                            )
                        lines.append(f"        </{section}>")
                lines.append("        <kineticLaw>")
                lines.append(_mathml_block(parse_expr(rx.rate), indent=10))
                lines.append("        </kineticLaw>")
                lines.append("      </reaction>")
            lines.append("    </listOfReactions>")
        if self.rate_rules:
            lines.append("    <listOfRules>")
            for sid, text in self.rate_rules.items():
                lines.append(f'      <rateRule variable="{sid}">')
                lines.append(_mathml_block(parse_expr(text), indent=8))
                lines.append("      </rateRule>")
            lines.append("    </listOfRules>")
        lines.append("  </model>")
        lines.append("</sbml>")
        return "\n".join(lines) + "\n"


_BINARY_TO_MATHML = {"add": "plus", "sub": "minus", "mul": "times",
                     "div": "divide", "pow": "power"}
_UNARY_TO_MATHML = {"exp": "exp", "log": "ln", "abs": "abs", "sin": "sin",
                    "cos": "cos", "tan": "tan", "tanh": "tanh"}


def _mathml(expr: Expr, pad: str) -> list[str]:
    """Render an expression tree as MathML lines (reader subset)."""
    if isinstance(expr, Var):
        return [f"{pad}<ci> {expr.name} </ci>"]
    if isinstance(expr, Const):
        return [f"{pad}<cn> {expr.value!r} </cn>"]
    if isinstance(expr, Unary):
        if expr.op == "neg":
            head = "minus"
        elif expr.op == "sqrt":
            head = "root"
        elif expr.op in _UNARY_TO_MATHML:
            head = _UNARY_TO_MATHML[expr.op]
        else:
            raise ValueError(f"no MathML rendering for unary op {expr.op!r}")
        return [f"{pad}<apply>", f"{pad}  <{head}/>",
                *_mathml(expr.arg, pad + "  "), f"{pad}</apply>"]
    if isinstance(expr, Binary):
        if expr.op not in _BINARY_TO_MATHML:
            raise ValueError(f"no MathML rendering for binary op {expr.op!r}")
        return [
            f"{pad}<apply>",
            f"{pad}  <{_BINARY_TO_MATHML[expr.op]}/>",
            *_mathml(expr.left, pad + "  "),
            *_mathml(expr.right, pad + "  "),
            f"{pad}</apply>",
        ]
    raise ValueError(f"no MathML rendering for {type(expr).__name__}")


def _mathml_block(expr: Expr, indent: int) -> str:
    """A full ``<math>`` element at the given indentation."""
    pad = " " * indent
    inner = _mathml(expr, pad + "  ")
    return "\n".join([
        f'{pad}<math xmlns="http://www.w3.org/1998/Math/MathML">',
        *inner,
        f"{pad}</math>",
    ])


# ----------------------------------------------------------------------
# random network construction
# ----------------------------------------------------------------------


def random_network(rng: random.Random, name: str, *, cycle: bool) -> ReactionNetwork:
    """A random conservative conversion network.

    Species form a chain ``s0 -> s1 -> ... -> s(n-1)`` of unit
    conversions (every reaction conserves total mass).  With
    ``cycle=True`` a closing reaction ``s(n-1) -> s0`` is added, so the
    head species can be replenished; without it the head only drains.
    One random cross-conversion and an optional catalyzed step add
    structural variety.
    """
    n = rng.randint(3, 5)
    species = [f"s{i}" for i in range(n)]
    initial = {s: round(rng.uniform(0.2, 1.5), 4) for s in species}
    params: dict[str, float] = {}
    reactions: list[Reaction] = []

    def add(rid: str, src: str, dst: str, rate: str) -> None:
        reactions.append(Reaction(rid, {src: 1.0}, {dst: 1.0}, rate))

    for i in range(n - 1):
        k = f"k{i}"
        params[k] = round(rng.uniform(0.2, 1.5), 4)
        add(f"r{i}", species[i], species[i + 1], f"{k} * {species[i]}")
    if cycle:
        params["kc"] = round(rng.uniform(0.2, 1.5), 4)
        add("rc", species[-1], species[0], f"kc * {species[-1]}")
    # one random cross conversion (never out of the head when draining,
    # so chain networks keep their head monotone)
    lo = 0 if cycle else 1
    src = rng.randrange(lo, n)
    dst = rng.randrange(0, n)
    if dst == src:
        dst = (src + 1) % n
    params["kx"] = round(rng.uniform(0.1, 0.8), 4)
    add("rx", species[src], species[dst], f"kx * {species[src]}")
    if rng.random() < 0.5 and n >= 4:
        # catalyzed conversion: still a 1-to-1 exchange, rate scaled by
        # a third species that is neither consumed nor produced
        cat = species[-1]
        params["ke"] = round(rng.uniform(0.1, 0.6), 4)
        add("re", species[1], species[2], f"ke * {cat} * {species[1]}")
    return ReactionNetwork(
        name=name, species=species, initial=initial,
        params=params, reactions=reactions,
    )


# ----------------------------------------------------------------------
# the SBML file corpus
# ----------------------------------------------------------------------


def _mm_enzyme_network(rng: random.Random, name: str) -> ReactionNetwork:
    """A Michaelis-Menten substrate→product model with a boundary enzyme."""
    vmax = round(rng.uniform(0.5, 2.0), 4)
    km = round(rng.uniform(0.3, 1.2), 4)
    kdeg = round(rng.uniform(0.05, 0.3), 4)
    return ReactionNetwork(
        name=name,
        species=["sub", "prod", "enz"],
        initial={
            "sub": round(rng.uniform(0.8, 2.0), 4),
            "prod": 0.0,
            "enz": round(rng.uniform(0.5, 1.5), 4),
        },
        params={"vmax": vmax, "km": km, "kdeg": kdeg},
        reactions=[
            Reaction("conv", {"sub": 1.0}, {"prod": 1.0},
                     "vmax * enz * sub / (km + sub)"),
            Reaction("deg", {"prod": 1.0}, {}, "kdeg * prod"),
        ],
        boundary=frozenset({"enz"}),
        compartment_size=2.0 if rng.random() < 0.5 else 1.0,
    )


def _rate_rule_network(rng: random.Random, name: str) -> ReactionNetwork:
    """A logistic-drive model: growth via rateRule, decay via reaction."""
    r = round(rng.uniform(0.3, 1.0), 4)
    cap = round(rng.uniform(2.0, 6.0), 4)
    d = round(rng.uniform(0.05, 0.25), 4)
    return ReactionNetwork(
        name=name,
        species=["z", "w"],
        initial={"z": round(rng.uniform(0.2, 1.0), 4), "w": 0.0},
        params={"r": r, "kcap": cap, "d": d},
        reactions=[Reaction("decay", {"z": 1.0}, {"w": 1.0}, "d * z")],
        rate_rules={"z": "r * z * (1 - z / kcap)"},
    )


def write_sbml_corpus(directory: str | Path, seed: int = DEFAULT_SEED) -> list[Path]:
    """Write the committed SBML file corpus (24 models) to ``directory``.

    Three shapes: 10 random conservative networks (``net*``), 8
    Michaelis-Menten enzyme models with a boundary species
    (``enzyme*``), 6 rate-rule logistic-drive models (``drive*``).
    Byte-deterministic under a fixed seed.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    out: list[Path] = []

    def emit(net: ReactionNetwork) -> None:
        path = directory / f"{net.name}.xml"
        path.write_text(net.to_sbml(), encoding="utf-8")
        out.append(path)

    for i in range(10):
        rng = random.Random(f"sbml-net:{seed}:{i}")
        net = random_network(rng, f"net{i:02d}", cycle=i % 2 == 0)
        if i % 3 == 2:
            net.compartment_size = 2.0
        emit(net)
    for i in range(8):
        emit(_mm_enzyme_network(random.Random(f"sbml-enzyme:{seed}:{i}"), f"enzyme{i:02d}"))
    for i in range(6):
        emit(_rate_rule_network(random.Random(f"sbml-drive:{seed}:{i}"), f"drive{i:02d}"))
    return out


# ----------------------------------------------------------------------
# scenario families
# ----------------------------------------------------------------------


def _inline_model(net: ReactionNetwork) -> tuple[dict, dict[str, float], float]:
    """(inline model dict, initial conditions, total initial mass)."""
    system, init = net.to_ode()
    return ode_to_dict(system), init, round(sum(init.values()), 6)


def _mass_action(seed: int, count: int) -> list[Scenario]:
    """Random conservative networks: drain barriers + SMC reach probes."""
    entries: list[Scenario] = []
    for i in range(count):
        net_index = i // 2
        cycle = net_index % 2 == 0
        rng = random.Random(f"mass-action:{seed}:{net_index}")
        net = random_network(rng, f"manet{net_index:02d}", cycle=cycle)
        model, init, total = _inline_model(net)
        bounds = {s: [0.0, round(total * 1.05, 6)] for s in net.species}
        shape = "cycle" if cycle else "chain"
        if i % 2 == 0:
            head = net.species[0]
            level = round(total * 0.5, 6)
            entries.append(Scenario(
                name=f"ma-s{seed}-{net_index:02d}-drain",
                summary=f"can the head species of a random {shape} network ascend?",
                task="falsify",
                model=model,
                query={
                    "method": "ascent",
                    "variable": head,
                    "from_level": round(level * 0.8, 6),
                    "to_level": level,
                    "state_bounds": bounds,
                    "param_ranges": {
                        k: [round(v * 0.5, 6), round(v * 1.5, 6)]
                        for k, v in sorted(net.params.items())[:2]
                    },
                },
                tags=("corpus", "massaction", "falsification"),
                family="mass-action",
                description=(
                    f"Generated conservative {shape} network "
                    f"({len(net.species)} species, {len(net.reactions)} "
                    f"reactions, seed {seed}): a barrier query asking whether "
                    f"{head} can rise through the mid-mass band. Chain "
                    "networks only drain their head (UNSAT); cycles feed it "
                    "back (delta-sat)."
                ),
            ))
        else:
            tail = net.species[-1]
            level = round(init[tail] + 0.25 * (total - init[tail]), 6)
            entries.append(Scenario(
                name=f"ma-s{seed}-{net_index:02d}-smc",
                summary=f"P(tail species of a random {shape} network exceeds a mass level)",
                task="smc",
                model=model,
                query={
                    "phi": {"op": "F", "bound": 8.0, "arg": f"{tail} >= {level}"},
                    "init": dict(init),
                    "horizon": 8.0,
                    "method": "bayesian",
                    "n": 20,
                },
                seed=net_index,
                tags=("corpus", "massaction", "smc"),
                family="mass-action",
                description=(
                    f"Generated conservative {shape} network "
                    f"({len(net.species)} species, seed {seed}): a small "
                    f"Bayesian SMC run scoring whether {tail} accumulates a "
                    "quarter of the remaining mass within the horizon."
                ),
            ))
    return entries


def _switched(seed: int, count: int) -> list[Scenario]:
    """Thermostat variants: jittered thresholds, reach + robustness."""
    entries: list[Scenario] = []
    for i in range(count):
        rng = random.Random(f"switched:{seed}:{i}")
        heat = round(rng.uniform(26.0, 34.0), 4)
        if i % 2 == 0:
            goal = round(rng.uniform(18.5, 20.0), 4)
            lo = round(rng.uniform(14.0, 16.0), 4)
            entries.append(Scenario(
                name=f"sw-s{seed}-{i:02d}-reach",
                summary=f"synthesize a switch-on threshold (heat={heat})",
                task="reach",
                model={"builtin": "thermostat", "args": {"heat": heat}},
                query={
                    "goal": f"x >= {goal}",
                    "goal_mode": "on",
                    "max_jumps": 1,
                    "time_bound": 3.0,
                    "param_ranges": {"theta_on": [lo, 21.0]},
                },
                solver={"enclosure_step": 0.1, "max_boxes": 120},
                tags=("corpus", "hybrid", "bmc"),
                family="switched",
                description=(
                    f"Generated thermostat variant (heater gain {heat}, seed "
                    f"{seed}): dReach-style threshold synthesis asking for a "
                    f"switch-on point under which the heating band x >= {goal} "
                    "is revisited within one jump."
                ),
            ))
        else:
            bad = round(heat + rng.uniform(3.0, 6.0), 4)
            entries.append(Scenario(
                name=f"sw-s{seed}-{i:02d}-safe",
                summary=f"heater gain {heat} provably cannot overshoot {bad}",
                task="robustness",
                model={"builtin": "thermostat", "args": {"heat": heat}},
                query={
                    "bad": f"x >= {bad}",
                    "disturbance": {"x": [19.5, 21.5]},
                    "time_bound": 2.0,
                    "max_jumps": 1,
                },
                solver={"enclosure_step": 0.25, "max_boxes": 80},
                tags=("corpus", "hybrid", "robustness"),
                family="switched",
                description=(
                    f"Generated thermostat variant (heater gain {heat}, seed "
                    f"{seed}): the on-mode dynamics x' = heat - x contract "
                    f"toward {heat}, so the overshoot region x >= {bad} is "
                    "unreachable from the disturbed band — UNSAT validates "
                    "the safety margin."
                ),
            ))
    return entries


def _cardiac_perturbed(seed: int, count: int) -> list[Scenario]:
    """Perturbed-parameter cohorts of the FK / BCF dome barriers."""
    entries: list[Scenario] = []
    for i in range(count):
        rng = random.Random(f"cardiac:{seed}:{i}")
        jitter = lambda v: round(v * rng.uniform(0.9, 1.1), 4)  # noqa: E731
        if i % 5 != 4:
            entries.append(Scenario(
                name=f"fk-s{seed}-{i:02d}-dome",
                summary="perturbed Fenton-Karma dome barrier (still structural)",
                task="falsify",
                model={"builtin": "fenton_karma_mode", "args": {"mode": "excited"}},
                query={
                    "method": "ascent",
                    "variable": "u",
                    "from_level": jitter(0.75),
                    "to_level": jitter(0.86),
                    "state_bounds": {
                        "u": [0.0, 1.2], "v": [0.0, 0.01], "w": [0.0, 1.0],
                    },
                    "param_ranges": {
                        "tau_r": [jitter(10.0), jitter(38.0)],
                        "tau_si": [jitter(28.0), jitter(130.0)],
                    },
                },
                tags=("corpus", "cardiac", "falsification"),
                family="cardiac-perturbed",
                description=(
                    f"Cohort member {i} (seed {seed}) of the FK dome query: "
                    "the dome window and physiological parameter ranges are "
                    "jittered by up to 10%, probing how far the structural "
                    "no-dome verdict of the paper's cardiac case study "
                    "extends."
                ),
            ))
        else:
            entries.append(Scenario(
                name=f"bcf-s{seed}-{i:02d}-dome",
                summary="perturbed Bueno-Cherry-Fenton dome barrier (control)",
                task="falsify",
                model={"builtin": "bcf_mode", "args": {"mode": "m4"}},
                query={
                    "method": "ascent",
                    "variable": "u",
                    "from_level": jitter(1.0),
                    "to_level": jitter(1.2),
                    "state_bounds": {
                        "u": [0.0, 1.6], "v": [0.0, 1.0],
                        "w": [0.0, 1.0], "s": [0.0, 1.0],
                    },
                    "param_ranges": {"tau_so1": [jitter(25.0), jitter(35.0)]},
                },
                tags=("corpus", "cardiac", "falsification"),
                family="cardiac-perturbed",
                description=(
                    f"Cohort member {i} (seed {seed}) of the BCF control "
                    "query: the epicardial dynamics keep admitting an ascent "
                    "through the jittered dome window."
                ),
            ))
    return entries


def _ias_perturbed(seed: int, count: int) -> list[Scenario]:
    """Perturbed burden caps / initial loads for the IAS cohort."""
    patients = ("patient_A", "patient_B", "patient_C")
    entries: list[Scenario] = []
    for i in range(count):
        rng = random.Random(f"ias:{seed}:{i}")
        patient = patients[i % len(patients)]
        cap = round(rng.uniform(32.0, 48.0), 4)
        x0 = round(rng.uniform(12.0, 18.0), 4)
        horizon = 240.0
        entries.append(Scenario(
            name=f"ias-s{seed}-{i:02d}-burden",
            summary=f"perturbed IAS burden bound for {patient} (cap {cap})",
            task="smc",
            model={"builtin": "ias_model", "args": {"patient": patient}},
            query={
                "phi": {"op": "G", "bound": horizon, "arg": f"x + y <= {cap}"},
                "init": {"x": x0, "y": 0.01, "z": 12.0},
                "horizon": horizon,
                "method": "bayesian",
                "n": 16,
            },
            seed=i,
            tags=("corpus", "prostate", "smc", "cohort"),
            family="ias-perturbed",
            description=(
                f"Cohort member {i} (seed {seed}) of the prostate IAS "
                f"burden study: profile {patient}, jittered burden cap "
                f"{cap} and initial load x(0) = {x0}, scored with a "
                "16-sample Bayesian posterior over a 240-day horizon."
            ),
        ))
    return entries


#: family name -> (generator, default count, one-line description).
FAMILIES: dict[str, tuple[Callable[[int, int], list[Scenario]], int, str]] = {
    "mass-action": (
        _mass_action, 36,
        "random conservative mass-action networks (drain barriers + SMC)",
    ),
    "switched": (
        _switched, 16,
        "thermostat variants: jittered thresholds, reach + robustness",
    ),
    "cardiac-perturbed": (
        _cardiac_perturbed, 10,
        "perturbed-parameter cohorts of the FK/BCF dome barriers",
    ),
    "ias-perturbed": (
        _ias_perturbed, 8,
        "perturbed burden caps for the prostate IAS cohort",
    ),
}


def family_names() -> list[str]:
    """The generatable family names, sorted."""
    return sorted(FAMILIES)


def generate_family(
    family: str, seed: int = DEFAULT_SEED, count: int | None = None
) -> list[Scenario]:
    """Generate one scenario family deterministically.

    Parameters
    ----------
    family:
        A key of :data:`FAMILIES`.
    seed:
        Corpus seed; baked into entry names so corpora generated under
        different seeds can coexist in one registry.
    count:
        Number of entries (defaults to the family's standard size).
    """
    if family not in FAMILIES:
        raise ValueError(
            f"unknown scenario family {family!r}; available: {family_names()}"
        )
    fn, default_count, _ = FAMILIES[family]
    n = default_count if count is None else int(count)
    if n < 0:
        raise ValueError("count must be non-negative")
    return fn(int(seed), n)


def generate_corpus(seed: int = DEFAULT_SEED) -> list[Scenario]:
    """All families at their default sizes, in family order."""
    out: list[Scenario] = []
    for family in family_names():
        out.extend(generate_family(family, seed=seed))
    return out


def _unique_names(entries: Iterable[Scenario]) -> None:
    """Raise on duplicate names (guards corpus regeneration)."""
    seen: set[str] = set()
    for s in entries:
        if s.name in seen:
            raise ValueError(f"duplicate generated scenario name {s.name!r}")
        seen.add(s.name)
