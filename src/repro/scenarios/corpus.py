"""The committed scenario corpus: pre-triaged ingested + generated entries.

``data/corpus.json`` is produced by ``python -m repro.tools.regen_corpus``
— it ingests the committed SBML files (``data/sbml/*.xml``, written by
:func:`repro.scenarios.generate.write_sbml_corpus`), generates every
procedural family at its default size and seed, triages the expected
verdict of each entry with a budget-bound solve, and writes the result
as one deterministic JSON array.  Loading it back is therefore a pure
data operation: importing ``repro.scenarios`` registers ~150 corpus
entries without solving anything.
"""

from __future__ import annotations

import json
from pathlib import Path

from .catalog import Scenario, _REGISTRY, register_scenario

__all__ = ["DATA_DIR", "CORPUS_FILE", "SBML_DIR", "load_corpus", "register_corpus"]

#: Package data directory holding the committed corpus.
DATA_DIR = Path(__file__).resolve().parent / "data"

#: The pre-triaged corpus entries (one JSON array).
CORPUS_FILE = DATA_DIR / "corpus.json"

#: The committed SBML file corpus the ``sbml`` family is ingested from.
SBML_DIR = DATA_DIR / "sbml"


def load_corpus(path: str | Path | None = None) -> list[Scenario]:
    """Read the committed corpus entries (without registering them)."""
    file = CORPUS_FILE if path is None else Path(path)
    if not file.exists():
        return []
    with open(file, "r", encoding="utf-8") as fh:
        raw = json.load(fh)
    return [Scenario.from_dict(d) for d in raw]


def register_corpus(path: str | Path | None = None) -> int:
    """Register the committed corpus; returns how many entries landed.

    Idempotent: entries already present (e.g. on repeated import) are
    left alone rather than tripping the duplicate-name guard.
    """
    count = 0
    for entry in load_corpus(path):
        if entry.name in _REGISTRY:
            continue
        register_scenario(entry)
        count += 1
    return count
