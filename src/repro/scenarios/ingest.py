"""Bulk SBML ingestion: a directory of models becomes catalog entries.

The paper's tooling consumes BioModels-style SBML; ``repro.io.sbml``
reads one file.  This module scales that to a *corpus*: point
:func:`ingest_dir` at a directory and every parseable model is turned
into scenario entries automatically —

* **bounds inference** from initial conditions: conservation-style
  state caps ``[0, max(2·x0, total initial mass)]`` and ±50% parameter
  ranges around the declared rate constants;
* **task-template instantiation** for the model classes SBML covers
  (pure ODE networks): an ascent/barrier falsification pair (can the
  busiest species climb through a mid-mass band? is it still moving
  near depletion?) and a Bayesian SMC reach probe;
* **expected-verdict triage** (:func:`triage`): a cheap budget-bound
  solve of each entry records the verdict the corpus pins from then on.

Malformed files are never fatal: parser rejections (missing initials,
unit mismatches, non-finite sizes — see ``repro.io.sbml``) and
inference failures (zero-width bounds, oversized models) surface as
skip-with-reason rows in the :class:`IngestResult`, so one bad file
cannot poison a bulk import.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.io.native import ode_to_dict
from repro.io.sbml import SBMLError, SBMLModel, load_sbml

from .catalog import Scenario

__all__ = [
    "IngestSkip",
    "IngestResult",
    "infer_bounds",
    "ingest_file",
    "ingest_dir",
    "triage",
    "entries_json",
]

#: Models larger than this are skipped: the corpus templates are
#: budget-bound probes, not full-scale analyses.
MAX_SPECIES = 8

#: Number of parameter ranges included in ascent queries (keeps the
#: paving dimension, and therefore the triage budget, bounded).
MAX_PARAM_RANGES = 2


class IngestSkip(ValueError):
    """A model that parses but cannot be turned into corpus entries.

    The message is the human-readable skip reason recorded in
    :class:`IngestResult.skipped`.
    """


@dataclass
class IngestResult:
    """Outcome of a bulk import: entries plus per-file skip reasons."""

    entries: list[Scenario] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)
    files: int = 0

    def summary(self) -> str:
        """One-line human summary for CLI output."""
        return (
            f"{len(self.entries)} entries from "
            f"{self.files - len(self.skipped)}/{self.files} files"
            + (f" ({len(self.skipped)} skipped)" if self.skipped else "")
        )

    def to_dict(self) -> dict:
        """JSON-able form: entry dicts plus skip rows."""
        return {
            "entries": [s.to_dict() for s in self.entries],
            "skipped": [{"file": f, "reason": r} for f, r in self.skipped],
            "files": self.files,
        }


# ----------------------------------------------------------------------
# bounds inference
# ----------------------------------------------------------------------


def infer_bounds(
    model: SBMLModel,
) -> tuple[dict[str, list[float]], dict[str, list[float]]]:
    """Infer state bounds and parameter ranges from a parsed model.

    States get conservation-style caps ``[0, max(2·x0, total initial
    mass)]`` — a species starting at zero can still accumulate the
    whole conserved pool.  Parameters get ±50% ranges around their
    declared values; zero-valued parameters are dropped (their range
    would be zero-width and pave nothing).

    Raises
    ------
    IngestSkip
        When every initial concentration is zero: the inferred state
        box would be zero-width and every template query degenerate.
    """
    total = sum(model.initial.values())
    if total <= 0.0:
        raise IngestSkip(
            "zero-width inferred bounds: every initial concentration is zero"
        )
    bounds = {
        s: [0.0, round(max(2.0 * x0, total), 9)]
        for s, x0 in model.initial.items()
    }
    ranges = {
        p: sorted([round(0.5 * v, 9), round(1.5 * v, 9)])
        for p, v in model.system.params.items()
        if v != 0.0
    }
    return bounds, ranges


# ----------------------------------------------------------------------
# task templates
# ----------------------------------------------------------------------


def _ascent_entry(
    stem: str, model_dict: dict, kind: str, variable: str,
    band: tuple[float, float], bounds: dict, ranges: dict, prose: str,
) -> Scenario:
    """One ascent/barrier falsification entry from the template."""
    return Scenario(
        name=f"sbml-{stem}-{kind}",
        summary=f"can {variable} of {stem} ascend through [{band[0]}, {band[1]}]?",
        task="falsify",
        model=model_dict,
        query={
            "method": "ascent",
            "variable": variable,
            "from_level": band[0],
            "to_level": band[1],
            "state_bounds": bounds,
            "param_ranges": dict(sorted(ranges.items())[:MAX_PARAM_RANGES]),
        },
        tags=("corpus", "sbml", "massaction", "falsification"),
        family="sbml",
        description=prose,
    )


def ingest_file(path: str | Path, *, horizon: float = 8.0) -> list[Scenario]:
    """Turn one SBML file into template-instantiated catalog entries.

    Returns the (untriaged, ``expected=None``) entries; raises
    :class:`IngestSkip` or :class:`~repro.io.sbml.SBMLError` when the
    file cannot be ingested — :func:`ingest_dir` converts both into
    skip-with-reason rows.
    """
    path = Path(path)
    parsed = load_sbml(str(path))
    states = parsed.system.state_names
    if not states:
        raise IngestSkip("model has no dynamic species")
    if len(states) > MAX_SPECIES:
        raise IngestSkip(
            f"model has {len(states)} dynamic species (corpus cap {MAX_SPECIES})"
        )
    bounds, ranges = infer_bounds(parsed)
    stem = path.stem
    model_dict = ode_to_dict(parsed.system)
    n_rx = len(parsed.system.derivatives)

    # the busiest species: widest inferred bound, species order on ties
    wide = max(states, key=lambda s: (bounds[s][1], -states.index(s)))
    hi = bounds[wide][1]
    provenance = (
        f"Ingested from {path.name} ({n_rx} dynamic species); bounds "
        "inferred from initial concentrations, parameter ranges +/-50% "
        "around declared rate constants."
    )
    entries = [
        _ascent_entry(
            stem, model_dict, "rise", wide,
            (round(0.55 * hi, 9), round(0.7 * hi, 9)), bounds, ranges,
            f"{provenance} Barrier query: can {wide} climb through the "
            "upper-middle of its inferred range?",
        ),
        _ascent_entry(
            stem, model_dict, "settle", wide,
            (round(0.02 * hi, 9), round(0.1 * hi, 9)), bounds, ranges,
            f"{provenance} Quiescence probe: near depletion, can {wide} "
            "still be rising?",
        ),
    ]

    # SMC reach probe on the emptiest species (growth target)
    target = min(states, key=lambda s: (parsed.initial[s], states.index(s)))
    level = round(0.25 * sum(parsed.initial[s] for s in states), 9)
    entries.append(Scenario(
        name=f"sbml-{stem}-smc",
        summary=f"P({target} of {stem} accumulates a quarter of the pool)",
        task="smc",
        model=model_dict,
        query={
            "phi": {"op": "F", "bound": horizon, "arg": f"{target} >= {level}"},
            "init": {s: parsed.initial[s] for s in states},
            "horizon": horizon,
            "method": "bayesian",
            "n": 20,
        },
        seed=0,
        tags=("corpus", "sbml", "massaction", "smc"),
        family="sbml",
        description=(
            f"{provenance} Bayesian SMC probe: does the emptiest species "
            f"{target} reach {level} within the horizon?"
        ),
    ))
    return entries


def ingest_dir(
    directory: str | Path,
    *,
    patterns: Sequence[str] = ("*.xml", "*.sbml"),
    horizon: float = 8.0,
) -> IngestResult:
    """Ingest every SBML file under ``directory`` (non-recursive).

    Files that fail to parse or to template are recorded as
    ``(filename, reason)`` skip rows instead of raising; duplicate
    model stems are skipped too (entry names must stay unique).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ValueError(f"not a directory: {directory}")
    files: list[Path] = []
    for pattern in patterns:
        files.extend(directory.glob(pattern))
    result = IngestResult()
    seen_stems: set[str] = set()
    for path in sorted(set(files)):
        result.files += 1
        if path.stem in seen_stems:
            result.skipped.append((path.name, "duplicate model stem"))
            continue
        try:
            entries = ingest_file(path, horizon=horizon)
        except (SBMLError, IngestSkip) as exc:
            result.skipped.append((path.name, str(exc)))
            continue
        seen_stems.add(path.stem)
        result.entries.extend(entries)
    return result


# ----------------------------------------------------------------------
# expected-verdict triage
# ----------------------------------------------------------------------


def triage(
    entries: Iterable[Scenario], *, seed: int = 0, progress=None
) -> list[Scenario]:
    """Solve each entry once on a small budget and pin its verdict.

    Returns copies with ``expected`` set to the observed
    :class:`~repro.status.AnalysisStatus` value.  ``progress`` (if
    given) is called with ``(name, status)`` after each solve.
    """
    from repro.api import Engine

    out: list[Scenario] = []
    with Engine(seed=seed) as engine:
        for entry in entries:
            report = engine.run(entry.spec())
            status = getattr(report.status, "value", str(report.status))
            if progress is not None:
                progress(entry.name, status)
            out.append(dataclasses.replace(entry, expected=status))
    return out


def entries_json(entries: Iterable[Scenario], indent: int = 1) -> str:
    """Serialize entries to a deterministic JSON array."""
    return json.dumps([s.to_dict() for s in entries], indent=indent) + "\n"
