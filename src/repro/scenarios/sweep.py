"""Scenario sweeps: expand one catalog entry into a batch of specs.

A :class:`ScenarioSweep` is declarative data, like the scenarios it
expands: a scenario name plus any combination of

* a **grid** (cartesian product of explicit per-parameter value lists),
* seeded **random** draws (uniform ranges, ``samples`` draws from one
  ``random.Random(seed)`` -- the same sweep always expands to the same
  specs, so repeated submissions hit the result cache),
* a patient **cohort** (values for one parameter, with the string
  ``"patients"`` resolving to the model zoo's ``PATIENT_PROFILES``),
* a list of **seeds** (varying ``TaskSpec.seed`` instead of a model
  parameter -- the replication axis).

``expand()`` returns plain :class:`~repro.api.spec.TaskSpec` objects in
a deterministic order; ``submit()``/``run()`` push them through an
:class:`~repro.api.engine.Engine` batch, so executor backends, progress
events and the content-addressed result cache all apply unchanged.
"""

from __future__ import annotations

import itertools
import json
import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from .catalog import Scenario, get_scenario

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.engine import Engine
    from repro.api.report import AnalysisReport
    from repro.api.spec import TaskSpec
    from repro.service.jobs import JobHandle

__all__ = ["ScenarioSweep", "patient_cohort", "family_specs"]


def patient_cohort() -> list[str]:
    """The model zoo's synthetic IAS patient names, sorted."""
    from repro.models import PATIENT_PROFILES

    return sorted(PATIENT_PROFILES)


def family_specs(family: str, seeds: list[int] | None = None) -> "list[TaskSpec]":
    """Expand every registered entry of a corpus family into specs.

    The corpus-scale analogue of a cohort sweep: ``Engine.run_batch(
    family_specs("switched"))`` pushes one whole family through an
    engine batch.  ``seeds`` adds the replication axis, one spec per
    entry per seed (named ``entry#sN`` like :class:`ScenarioSweep`).
    """
    from .catalog import find_scenarios

    specs: "list[TaskSpec]" = []
    for entry in find_scenarios(family=family):
        if seeds is None:
            specs.append(entry.spec())
        else:
            for s in seeds:
                spec = entry.spec(seed=int(s))
                specs.append(spec.replace(name=f"{spec.name}#s{int(s)}"))
    if not specs:
        raise ValueError(f"no registered scenarios in family {family!r}")
    return specs


@dataclass
class ScenarioSweep:
    """A declarative parameter sweep over one catalog entry.

    Attributes
    ----------
    scenario:
        Catalog entry name (see ``repro scenarios list``).
    grid:
        ``{param: [values...]}`` -- expanded as a cartesian product in
        sorted parameter order.
    random:
        ``{param: (lo, hi)}`` -- each of ``samples`` draws assigns every
        random parameter one uniform value from ``random.Random(seed)``.
    samples:
        Number of random draws (required > 0 when ``random`` is given).
    seed:
        RNG seed of the random draws (NOT the spec seed).
    cohort:
        Values for ``cohort_param``: an explicit list, or the string
        ``"patients"`` for the IAS patient profiles.
    cohort_param:
        The scenario parameter the cohort binds (default ``"patient"``).
    seeds:
        Optional list of ``TaskSpec.seed`` values -- the replication
        axis; each grid/cohort/draw point expands once per seed.
    """

    scenario: str
    grid: dict[str, list[Any]] = field(default_factory=dict)
    random: dict[str, tuple[float, float]] = field(default_factory=dict)
    samples: int = 0
    seed: int = 0
    cohort: list[Any] | str | None = None
    cohort_param: str = "patient"
    seeds: list[int] | None = None

    # ------------------------------------------------------------------
    def entry(self) -> Scenario:
        """The catalog entry this sweep expands."""
        return get_scenario(self.scenario)

    def _cohort_values(self) -> list[Any] | None:
        if self.cohort is None:
            return None
        if isinstance(self.cohort, str):
            if self.cohort != "patients":
                raise ValueError(
                    f"unknown symbolic cohort {self.cohort!r}; only 'patients' "
                    "is recognized (or pass an explicit list of values)"
                )
            return patient_cohort()
        return list(self.cohort)

    def points(self) -> list[dict[str, Any]]:
        """All parameter bindings, in deterministic expansion order.

        Order: cohort (outermost) x grid axes (sorted by name, values in
        given order) x random draws (draw index order).
        """
        axes: list[tuple[str, list[Any]]] = []
        cohort = self._cohort_values()
        if cohort is not None:
            axes.append((self.cohort_param, cohort))
        for name in sorted(self.grid):
            values = list(self.grid[name])
            if not values:
                raise ValueError(f"grid axis {name!r} has no values")
            axes.append((name, values))

        draws: list[dict[str, Any]] = [{}]
        if self.random:
            if self.samples <= 0:
                raise ValueError("random sweeps need samples > 0")
            rng = random.Random(self.seed)
            draws = []
            for _ in range(int(self.samples)):
                draw: dict[str, Any] = {}
                for name in sorted(self.random):
                    lo, hi = self.random[name]
                    draw[name] = rng.uniform(float(lo), float(hi))
                draws.append(draw)

        names = [n for n, _ in axes]
        points = []
        for combo in itertools.product(*[values for _, values in axes]):
            base = dict(zip(names, combo))
            for draw in draws:
                points.append({**base, **draw})
        return points

    def expand(self) -> "list[TaskSpec]":
        """Bind every point (and seed) into a ready-to-run spec list."""
        entry = self.entry()
        specs = []
        for point in self.points():
            if self.seeds is None:
                specs.append(entry.spec(**point))
            else:
                for s in self.seeds:
                    spec = entry.spec(seed=int(s), **point)
                    specs.append(spec.replace(name=f"{spec.name}#s{int(s)}"))
        return specs

    # ------------------------------------------------------------------
    def submit(self, engine: "Engine", **kwargs: Any) -> "list[JobHandle]":
        """Submit the expanded batch; returns handles in order."""
        return engine.submit_batch(self.expand(), **kwargs)

    def run(self, engine: "Engine | None" = None, **kwargs: Any) -> "list[AnalysisReport]":
        """Run the sweep synchronously (creating an engine if needed)."""
        if engine is None:
            from repro.api.engine import Engine

            with Engine(seed=0) as engine:
                return engine.run_batch(self.expand(), **kwargs)
        return engine.run_batch(self.expand(), **kwargs)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """The JSON-able sweep form (inverse of :meth:`from_dict`)."""
        return {
            "scenario": self.scenario,
            "grid": {k: list(v) for k, v in self.grid.items()},
            "random": {k: [float(lo), float(hi)] for k, (lo, hi) in self.random.items()},
            "samples": self.samples,
            "seed": self.seed,
            "cohort": (
                list(self.cohort)
                if isinstance(self.cohort, (list, tuple))
                else self.cohort
            ),
            "cohort_param": self.cohort_param,
            "seeds": None if self.seeds is None else [int(s) for s in self.seeds],
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "ScenarioSweep":
        """Rebuild a sweep from its :meth:`to_dict` form."""
        if "scenario" not in d:
            raise ValueError("sweep dict needs a 'scenario' field")
        raw_random = d.get("random", {})
        return cls(
            scenario=str(d["scenario"]),
            grid={k: list(v) for k, v in dict(d.get("grid", {})).items()},
            random={k: (float(lo), float(hi)) for k, (lo, hi) in dict(raw_random).items()},
            samples=int(d.get("samples", 0)),
            seed=int(d.get("seed", 0)),
            cohort=d.get("cohort"),
            cohort_param=str(d.get("cohort_param", "patient")),
            seeds=None if d.get("seeds") is None else [int(s) for s in d["seeds"]],
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize the sweep to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSweep":
        """Parse a sweep from JSON text."""
        return cls.from_dict(json.loads(text))
