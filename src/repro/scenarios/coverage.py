"""Corpus coverage: task kind × model class × verdict × solve path.

A 150-entry corpus is only useful if its *spread* is known: which task
kinds exercise which model classes, what verdicts they pin, and which
solver paths (serial / vectorized / sharded / warm) each cell drives.
:func:`coverage_report` computes that cross-tabulation over the
registered catalog, :func:`render_table` prints it, and
:func:`check_coverage` enforces the CI floor — no supported
task-kind × model-class cell may be empty, so corpus regressions are
visible instead of assumed away.
"""

from __future__ import annotations

import json
from typing import Iterable

from .catalog import Scenario, all_scenarios

__all__ = [
    "model_class",
    "solve_paths",
    "coverage_report",
    "render_table",
    "check_coverage",
    "SUPPORTED_CELLS",
]

#: Builtin model factories that produce hybrid automata.
_HYBRID_BUILTINS = frozenset({
    "thermostat", "bouncing_ball", "fenton_karma_hybrid", "fenton_karma_rest",
    "bcf_hybrid", "ias_model", "tbi_model",
})

#: Solve paths each task kind drives.  Box-paving tasks honor the
#: frontier/shard/warm-start solver options and are exercised on all
#: four differential paths; enclosure/BMC tasks run one deterministic
#: interval pipeline; sampling tasks are Monte-Carlo.
_TASK_PATHS: dict[str, tuple[str, ...]] = {
    "falsify": ("serial", "vectorized", "sharded", "warm"),
    "lyapunov": ("serial", "vectorized", "sharded", "warm"),
    "calibrate": ("serial", "vectorized"),
    "pipeline": ("serial", "vectorized"),
    "reach": ("enclosure",),
    "robustness": ("enclosure",),
    "therapy": ("enclosure",),
    "smc": ("sampled",),
}

#: The (task kind, model class) cells the shipped task registry
#: supports and the corpus must populate.  Hybrid-only tasks (reach,
#: robustness, therapy) never pair with plain ODE classes; data-driven
#: tasks (calibrate, pipeline) need banded samples, which only the
#: hand-written ODE entries carry today.
SUPPORTED_CELLS: tuple[tuple[str, str], ...] = (
    ("calibrate", "ode"),
    ("falsify", "ode"),
    ("falsify", "massaction"),
    ("smc", "ode"),
    ("smc", "massaction"),
    ("smc", "hybrid"),
    ("reach", "hybrid"),
    ("robustness", "hybrid"),
    ("therapy", "hybrid"),
    ("lyapunov", "ode"),
    ("lyapunov", "massaction"),
    ("pipeline", "ode"),
)


def model_class(scenario: Scenario) -> str:
    """Classify a scenario's model: ``hybrid``, ``massaction`` or ``ode``."""
    model = scenario.model
    if model.get("type") == "hybrid":
        return "hybrid"
    if model.get("builtin") in _HYBRID_BUILTINS:
        return "hybrid"
    if "massaction" in scenario.tags:
        return "massaction"
    return "ode"


def solve_paths(task: str) -> tuple[str, ...]:
    """The solver paths a task kind drives (see ``_TASK_PATHS``)."""
    return _TASK_PATHS.get(task, ("serial",))


def coverage_report(entries: Iterable[Scenario] | None = None) -> dict:
    """Cross-tabulate the catalog (or ``entries``) into a coverage report.

    The report is plain JSON-able data: totals, per-family counts, one
    row per populated (task, model class) cell with its verdict
    histogram and solve paths, and the list of supported cells that
    are empty (the CI floor violation set).
    """
    scenarios = list(all_scenarios() if entries is None else entries)
    cells: dict[tuple[str, str], dict] = {}
    families: dict[str, int] = {}
    for s in scenarios:
        cls = model_class(s)
        key = (s.task, cls)
        cell = cells.setdefault(key, {
            "task": s.task,
            "model_class": cls,
            "entries": 0,
            "verdicts": {},
            "paths": list(solve_paths(s.task)),
        })
        cell["entries"] += 1
        verdict = s.expected or "untriaged"
        cell["verdicts"][verdict] = cell["verdicts"].get(verdict, 0) + 1
        families[s.family or "core"] = families.get(s.family or "core", 0) + 1
    empty = sorted(
        f"{task}/{cls}" for task, cls in SUPPORTED_CELLS if (task, cls) not in cells
    )
    return {
        "total": len(scenarios),
        "families": dict(sorted(families.items())),
        "cells": [
            {**cells[key], "verdicts": dict(sorted(cells[key]["verdicts"].items()))}
            for key in sorted(cells)
        ],
        "supported": [f"{t}/{c}" for t, c in SUPPORTED_CELLS],
        "empty_supported": empty,
    }


def render_table(report: dict) -> str:
    """Human-readable rendering of a :func:`coverage_report` dict."""
    lines = [f"corpus: {report['total']} entries"]
    fams = ", ".join(f"{k}={v}" for k, v in report["families"].items())
    lines.append(f"families: {fams}")
    lines.append("")
    header = f"{'task':<12} {'model class':<12} {'entries':>7}  verdicts (paths)"
    lines.append(header)
    lines.append("-" * len(header))
    for cell in report["cells"]:
        verdicts = ", ".join(f"{k}:{v}" for k, v in cell["verdicts"].items())
        paths = "/".join(cell["paths"])
        lines.append(
            f"{cell['task']:<12} {cell['model_class']:<12} "
            f"{cell['entries']:>7}  {verdicts} ({paths})"
        )
    if report["empty_supported"]:
        lines.append("")
        lines.append(
            "EMPTY supported cells: " + ", ".join(report["empty_supported"])
        )
    else:
        lines.append("")
        lines.append(
            f"all {len(report['supported'])} supported task/model-class "
            "cells are populated"
        )
    return "\n".join(lines)


def check_coverage(report: dict) -> list[str]:
    """The coverage-floor violations (empty supported cells), if any."""
    return list(report["empty_supported"])


def coverage_json(report: dict) -> str:
    """Deterministic JSON rendering of a coverage report."""
    return json.dumps(report, indent=1) + "\n"
