"""repro -- a model checking-based analysis framework for systems
biology models.

A from-scratch Python reproduction of Liu, "A Model Checking-based
Analysis Framework for Systems Biology Models" (DAC 2020): nonlinear
ODE and hybrid-automaton models analyzed with delta-decision procedures
(ICP-based delta-complete solving, dReach-style bounded reachability),
statistical model checking, and Lyapunov stability analysis.

The front door is the unified task-oriented API::

    import repro

    report = repro.run({
        "task": "calibrate",
        "model": {"builtin": "logistic"},
        "query": {
            "data": {"samples": [[2.0, {"x": 1.45}]], "tolerance": 0.2},
            "param_ranges": {"r": [0.1, 2.0]},
            "x0": {"x": 0.5},
        },
    })

or, batched and parallel::

    reports = repro.Engine(workers=8).run_batch(specs)

Subpackages
-----------
- :mod:`repro.api`        unified Engine / TaskSpec / AnalysisReport facade
- :mod:`repro.scenarios`  declarative scenario catalog + parameter sweeps
- :mod:`repro.intervals`  outward-rounded interval arithmetic
- :mod:`repro.expr`       symbolic expressions (terms of L_RF)
- :mod:`repro.logic`      L_RF formulas, bounded quantifiers, delta-weakening
- :mod:`repro.solver`     delta-complete ICP solver + exists-forall CEGIS
- :mod:`repro.odes`       ODE systems, integrators, validated enclosures
- :mod:`repro.hybrid`     hybrid automata and simulation
- :mod:`repro.bmc`        bounded reachability / parameter synthesis
- :mod:`repro.smc`        statistical model checking (BLTL, SPRT, search)
- :mod:`repro.lyapunov`   Lyapunov synthesis and certification
- :mod:`repro.models`     cardiac / prostate / radiation / mass-action models
- :mod:`repro.apps`       calibration, falsification, therapy, robustness
- :mod:`repro.io`         SBML-subset and native JSON model formats
"""

from repro.api import (
    AnalysisReport,
    AnalysisStatus,
    Engine,
    JobHandle,
    JobState,
    Model,
    PipelineStage,
    ProgressEvent,
    ResultCache,
    SimOptions,
    SolverOptions,
    TaskSpec,
    register_task,
    run,
    run_batch,
    task_names,
)

__version__ = "0.2.0"

__all__ = [
    "__version__",
    "AnalysisReport",
    "AnalysisStatus",
    "PipelineStage",
    "Engine",
    "JobHandle",
    "JobState",
    "ProgressEvent",
    "ResultCache",
    "Model",
    "TaskSpec",
    "SolverOptions",
    "SimOptions",
    "register_task",
    "run",
    "run_batch",
    "task_names",
]
