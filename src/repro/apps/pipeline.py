"""The end-to-end analysis workflow of paper Fig. 2.

    delta-decision based parameter synthesis
        |-- delta-SAT --> calibrated model --> model validation
        |                     |-- validated --> stability / therapy
        |                     `-- falsified --> SMC analysis --> refine
        `-- UNSAT --> model falsification (reject hypothesis)

:class:`AnalysisPipeline` wires the application layers together: SMT
calibration on training data, validation against held-out test data,
and -- on validation failure -- an SMC probability estimate that
quantifies how far the model is from the desired behavior (the "new
hypotheses" signal of the figure).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Mapping

from repro.odes import ODESystem, rk45
from repro.progress import emit as _progress
from repro.smc import InitialDistribution, StatisticalModelChecker, prop
from repro.status import PipelineStage

from .calibration import (
    CalibrationStatus,
    SMTCalibrator,
    TimeSeriesData,
)

__all__ = ["PipelineStage", "PipelineReport", "AnalysisPipeline"]


@dataclass
class PipelineReport:
    """What happened at each stage of the Fig. 2 workflow.

    ``stage`` is a :class:`PipelineStage` member (FALSIFIED, CALIBRATED,
    VALIDATED or REFINE); being a ``str``-mixin enum, it still compares
    equal to the historical string literals (``stage == "validated"``).
    """

    stage: PipelineStage
    calibrated_params: dict[str, float] | None = None
    validation_errors: dict[float, dict[str, float]] = field(default_factory=dict)
    smc_probability: float | None = None
    detail: str = ""
    calibration_boxes: int = 0

    def __post_init__(self):
        if not isinstance(self.stage, PipelineStage):
            self.stage = PipelineStage(self.stage)

    @property
    def validated(self) -> bool:
        return self.stage is PipelineStage.VALIDATED

    @property
    def falsified(self) -> bool:
        return self.stage is PipelineStage.FALSIFIED


class AnalysisPipeline:
    """Fig. 2 workflow driver for single-mode ODE models.

    Parameters
    ----------
    system:
        The model hypothesis.
    train_data / test_data:
        Checkpoint bands for calibration and for held-out validation.
    param_ranges:
        Biologically plausible bounds for the unknown parameters.
    x0:
        Initial state.
    seed:
        RNG seed for the SMC refinement stage, so full pipeline runs
        are reproducible end to end (previously hard-wired to 0).
    """

    def __init__(
        self,
        system: ODESystem,
        train_data: TimeSeriesData,
        test_data: TimeSeriesData,
        param_ranges: Mapping[str, tuple[float, float]],
        x0: Mapping[str, float],
        delta: float = 0.05,
        max_boxes: int = 400,
        enclosure_step: float = 0.05,
        seed: int = 0,
    ):
        self.system = system
        self.train_data = train_data
        self.test_data = test_data
        self.param_ranges = dict(param_ranges)
        self.x0 = dict(x0)
        self.delta = delta
        self.max_boxes = max_boxes
        self.enclosure_step = enclosure_step
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self, smc_samples_epsilon: float = 0.1) -> PipelineReport:
        """Execute calibrate -> validate -> (analyze | SMC-refine).

        .. deprecated:: 0.2
            Use the ``pipeline`` task of :mod:`repro.api` instead; this
            shim delegates unchanged.
        """
        warnings.warn(
            "AnalysisPipeline.run is deprecated; submit a 'pipeline' spec "
            "through the unified repro.api facade (repro.run / Engine.run) "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._run_impl(smc_samples_epsilon)

    def _run_impl(self, smc_samples_epsilon: float = 0.1) -> PipelineReport:
        _progress("pipeline", "calibrate", step=1)
        calib = SMTCalibrator(
            self.system, self.train_data, self.param_ranges, self.x0,
            delta=self.delta, max_boxes=self.max_boxes,
            enclosure_step=self.enclosure_step,
        )
        res = calib._calibrate_impl()
        if res.status is CalibrationStatus.UNSAT:
            return PipelineReport(
                PipelineStage.FALSIFIED,
                detail="no parameters reproduce the training data; reject hypothesis",
                calibration_boxes=res.boxes_processed,
            )
        if res.status is CalibrationStatus.UNKNOWN:
            return PipelineReport(
                PipelineStage.REFINE, detail="calibration inconclusive (budget)",
                calibration_boxes=res.boxes_processed,
            )

        params = res.params
        _progress(
            "pipeline", "validate", step=2, calibration_boxes=res.boxes_processed
        )
        errors = self._validate(params)
        if not errors:
            return PipelineReport(
                PipelineStage.VALIDATED, calibrated_params=params,
                detail="test data reproduced; model ready for stability/therapy analysis",
                calibration_boxes=res.boxes_processed,
            )

        # validation failed: quantify with SMC under parameter jitter
        _progress(
            "pipeline", "smc-refine", step=3, misses=len(errors)
        )
        prob = self._smc_probability(params, smc_samples_epsilon)
        return PipelineReport(
            PipelineStage.REFINE,
            calibrated_params=params,
            validation_errors=errors,
            smc_probability=prob,
            detail="test data missed; SMC estimate quantifies the discrepancy",
            calibration_boxes=res.boxes_processed,
        )

    # ------------------------------------------------------------------
    def _validate(self, params: dict[str, float]) -> dict[float, dict[str, float]]:
        """Simulate at the calibrated parameters and collect band misses."""
        traj = rk45(
            self.system, self.x0, (0.0, self.test_data.horizon + 1e-9),
            params=params, rtol=1e-8,
        )
        errors: dict[float, dict[str, float]] = {}
        for cp in self.test_data.checkpoints:
            state = traj.at(cp.t)
            for name, (lo, hi) in cp.bands.items():
                v = state[name]
                if not (lo <= v <= hi):
                    miss = lo - v if v < lo else v - hi
                    errors.setdefault(cp.t, {})[name] = miss
        return errors

    def _smc_probability(
        self, params: dict[str, float], epsilon: float
    ) -> float:
        """P(model threads the test bands) under 5% parameter jitter."""
        jitter = {
            k: (v * 0.95, v * 1.05) if v != 0 else (-(0.05), 0.05)
            for k, v in params.items()
        }
        init = InitialDistribution({**self.x0, **jitter})
        checker = StatisticalModelChecker(
            self.system, init, horizon=self.test_data.horizon + 1e-9, seed=self.seed
        )
        phi = self._bands_bltl()
        p, _n = checker.probability(phi, epsilon=epsilon, alpha=0.1)
        return p

    def _bands_bltl(self):
        """The test bands as a conjunction of time-anchored checks."""
        from repro.expr import var
        from repro.logic import And
        from repro.smc import BLTL, at_time

        parts: list[BLTL] = []
        for cp in self.test_data.checkpoints:
            band = And(
                *[
                    (var(n) >= lo) & (var(n) <= hi)
                    for n, (lo, hi) in cp.bands.items()
                ]
            )
            parts.append(at_time(cp.t, prop(band)))
        phi: BLTL = parts[0]
        for p in parts[1:]:
            phi = phi & p
        return phi
