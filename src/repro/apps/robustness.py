"""Time-bounded robustness analysis (paper Section IV-C).

"Cardiac cells filter out insignificant stimulations to ensure proper
functioning in noisy environments.  Using the delta-decision procedures
we can verify this by checking if the action potential can be
successfully triggered by a small range of stimulation.  An unsat
answer returned by dReach will guarantee that the model is robust to
the corresponding stimulation amplitude."

:func:`check_robustness` decides whether a *bad* region is reachable
from a whole box of disturbed initial conditions; UNSAT proves
robustness.  :func:`stimulus_threshold` brackets the excitability
threshold by bisection between a proven-robust amplitude and a
proven-excitable one.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Mapping

from repro.bmc import BMCChecker, BMCOptions, BMCStatus, ReachSpec
from repro.hybrid import HybridAutomaton
from repro.intervals import Box
from repro.logic import Formula

__all__ = ["RobustnessResult", "check_robustness", "stimulus_threshold"]


@dataclass
class RobustnessResult:
    """Outcome of a robustness query.

    ``robust=True`` is exact (UNSAT certificate); ``robust=False``
    carries a delta-sat witness disturbance; ``robust=None`` means the
    budget was exhausted.
    """

    robust: bool | None
    witness: dict[str, float] | None = None
    detail: str = ""
    boxes_processed: int = 0

    def __bool__(self) -> bool:
        return self.robust is True


def check_robustness(
    automaton: HybridAutomaton,
    disturbance: Box | Mapping[str, tuple[float, float]],
    bad: Formula,
    time_bound: float = 50.0,
    max_jumps: int = 2,
    options: BMCOptions | None = None,
) -> RobustnessResult:
    """Is the ``bad`` region unreachable from every initial condition in
    the ``disturbance`` box?

    The disturbance box overrides the automaton's initial set for the
    named dimensions (e.g. the stimulated voltage range); unnamed state
    variables keep their default initial intervals.

    .. deprecated:: 0.2
        Use the ``robustness`` task of :mod:`repro.api` instead; this
        shim delegates unchanged.
    """
    warnings.warn(
        "check_robustness is deprecated; submit a 'robustness' spec "
        "through the unified repro.api facade (repro.run / Engine.run) "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _check_robustness_impl(
        automaton, disturbance, bad,
        time_bound=time_bound, max_jumps=max_jumps, options=options,
    )


def _check_robustness_impl(
    automaton: HybridAutomaton,
    disturbance: Box | Mapping[str, tuple[float, float]],
    bad: Formula,
    time_bound: float = 50.0,
    max_jumps: int = 2,
    options: BMCOptions | None = None,
) -> RobustnessResult:
    dist_box = disturbance if isinstance(disturbance, Box) else Box.from_bounds(dict(disturbance))
    init = automaton.initial_box().merged(dist_box)
    spec = ReachSpec(goal=bad, max_jumps=max_jumps, time_bound=time_bound)
    res = BMCChecker(automaton, options)._check_impl(spec, init_box=init)
    if res.status is BMCStatus.UNSAT:
        return RobustnessResult(
            True, detail="bad region unreachable (unsat)",
            boxes_processed=res.boxes_processed,
        )
    if res.status is BMCStatus.DELTA_SAT:
        return RobustnessResult(
            False, witness=res.witness_x0,
            detail=f"disturbance reaching bad region via {'->'.join(res.mode_path())}",
            boxes_processed=res.boxes_processed,
        )
    return RobustnessResult(
        None, detail="budget exhausted (unknown)",
        boxes_processed=res.boxes_processed,
    )


def stimulus_threshold(
    automaton: HybridAutomaton,
    stimulus_var: str,
    bad: Formula,
    lo: float,
    hi: float,
    time_bound: float = 50.0,
    max_jumps: int = 2,
    iterations: int = 6,
    options: BMCOptions | None = None,
) -> tuple[float, float]:
    """Bracket the excitability threshold of ``stimulus_var``.

    Returns ``(robust_below, excitable_above)``: amplitudes up to
    ``robust_below`` provably cannot reach ``bad``; some amplitude below
    ``excitable_above`` provably (delta) can.  Bisection tightens the
    bracket; inconclusive probes widen the unresolved middle gap.
    """
    robust_below = lo
    excitable_above = hi
    for _ in range(iterations):
        mid = 0.5 * (robust_below + excitable_above)
        res = _check_robustness_impl(
            automaton,
            {stimulus_var: (lo, mid)},
            bad,
            time_bound=time_bound,
            max_jumps=max_jumps,
            options=options,
        )
        if res.robust is True:
            robust_below = mid
        elif res.robust is False:
            excitable_above = mid
        else:
            break  # unknown: keep the current bracket
    return robust_below, excitable_above
