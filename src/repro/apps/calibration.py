"""Model calibration from time-series data (paper Section IV-A).

Parameter estimation of single-mode ODE models is encoded as an SMT
problem "in the style of BioPSy [53]": each experimental sample becomes
a band constraint ``x(t_i) in [lo_i, hi_i]``, and the delta-decision
procedure searches the parameter box for values under which the model
threads every band.

* ``delta-sat``: a parameter witness (the calibrated model) plus a box
  of parameters around it;
* ``unsat``: *no* parameter value in the box fits the data -- the model
  hypothesis is rejected (falsification, Section IV-A's FK result);
* paving mode returns the guaranteed parameter-set synthesis of BioPSy:
  inner (all-sat) boxes, outer (no-sat) boxes, and an undecided rest.

The flow constraints are discharged by validated enclosures, checkpoint
to checkpoint, exactly like the BMC layer.
"""

from __future__ import annotations

import enum
import time
import warnings
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.intervals import Box, Interval
from repro.odes import EnclosureError, ODESystem, flow_enclosure, rk45
from repro.progress import emit as _progress

__all__ = [
    "Checkpoint",
    "TimeSeriesData",
    "CalibrationStatus",
    "CalibrationResult",
    "SMTCalibrator",
]


@dataclass(frozen=True)
class Checkpoint:
    """A data band: at time ``t``, each named variable must lie in its
    interval."""

    t: float
    bands: Mapping[str, tuple[float, float]]


@dataclass
class TimeSeriesData:
    """Sorted checkpoint bands built from experimental samples."""

    checkpoints: list[Checkpoint]

    def __post_init__(self):
        self.checkpoints = sorted(self.checkpoints, key=lambda c: c.t)
        if self.checkpoints and self.checkpoints[0].t < 0:
            raise ValueError("checkpoint times must be nonnegative")

    @staticmethod
    def from_samples(
        samples: Sequence[tuple[float, Mapping[str, float]]],
        tolerance: float | Mapping[str, float] = 0.1,
        relative: bool = False,
    ) -> "TimeSeriesData":
        """Build bands from point samples with +/- tolerance.

        ``relative=True`` scales the tolerance by ``|value|``.
        """
        cps = []
        for t, values in samples:
            bands = {}
            for name, v in values.items():
                tol = tolerance[name] if isinstance(tolerance, Mapping) else tolerance
                half = abs(v) * tol if relative else tol
                bands[name] = (v - half, v + half)
            cps.append(Checkpoint(float(t), bands))
        return TimeSeriesData(cps)

    @property
    def horizon(self) -> float:
        return self.checkpoints[-1].t if self.checkpoints else 0.0


class CalibrationStatus(enum.Enum):
    DELTA_SAT = "delta-sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class CalibrationResult:
    status: CalibrationStatus
    params: dict[str, float] | None = None
    param_box: Box | None = None
    boxes_processed: int = 0
    wall_time: float = 0.0

    def __bool__(self) -> bool:
        return self.status is CalibrationStatus.DELTA_SAT


class _Fate(enum.Enum):
    PRUNED = 0
    VERIFIED = 1
    UNKNOWN = 2


@dataclass
class SMTCalibrator:
    """SMT-style calibrator for single-mode ODE models.

    Parameters
    ----------
    system:
        The ODE model; parameters not in ``param_ranges`` stay at their
        defaults.
    data:
        The checkpoint bands.
    param_ranges:
        Search box over the unknown parameters.
    x0:
        Initial state (a point dict or a Box for uncertain initial
        conditions, which become search dimensions too).
    delta:
        Bands are delta-widened for the sat verification (one-sided
        guarantee as in Theorem 1).
    """

    system: ODESystem
    data: TimeSeriesData
    param_ranges: Mapping[str, tuple[float, float]]
    x0: Mapping[str, float] | Box = field(default_factory=dict)
    delta: float = 0.05
    max_boxes: int = 600
    enclosure_step: float = 0.05
    enclosure_order: int = 2
    use_simulation_guidance: bool = True

    def __post_init__(self):
        unknown = set(self.param_ranges) - set(self.system.params)
        if unknown:
            raise ValueError(f"unknown parameters: {sorted(unknown)}")
        if not self.data.checkpoints:
            raise ValueError("no checkpoints")
        for cp in self.data.checkpoints:
            bad = set(cp.bands) - set(self.system.state_names)
            if bad:
                raise ValueError(f"checkpoint at t={cp.t} names non-states {sorted(bad)}")

    # ------------------------------------------------------------------
    def _initial_state_box(self) -> Box:
        if isinstance(self.x0, Box):
            return self.x0.restrict(self.system.state_names)
        return Box.from_point({k: float(self.x0[k]) for k in self.system.state_names})

    def _propagate(self, param_box: Box, state_box: Box) -> _Fate:
        """Enclosure propagation through all checkpoints."""
        t_prev = 0.0
        current = state_box
        all_ok = True
        pbox = param_box if len(param_box) else None
        for cp in self.data.checkpoints:
            duration = cp.t - t_prev
            tube = None
            if duration > 1e-12:
                try:
                    tube = flow_enclosure(
                        self.system, current, duration, pbox,
                        max_step=self.enclosure_step,
                        order=self.enclosure_order,
                    )
                    start = current
                    current = tube.final()
                except EnclosureError:
                    return _Fate.UNKNOWN
            # band intersection (contraction) and judgment
            for name, (lo, hi) in cp.bands.items():
                iv = current[name]
                band = Interval(lo, hi)
                if not iv.overlaps(band):
                    return _Fate.PRUNED
                if tube is not None and self._barrier_blocks(
                    name, start, band, tube, pbox
                ):
                    return _Fate.PRUNED
                wide = Interval(lo - self.delta, hi + self.delta)
                if not wide.contains_interval(iv):
                    all_ok = False
                current = current.with_interval(name, iv.intersect(band))
            t_prev = cp.t
        return _Fate.VERIFIED if all_ok else _Fate.UNKNOWN

    def _barrier_blocks(
        self,
        name: str,
        start: Box,
        band: Interval,
        tube,
        param_box: Box | None,
    ) -> bool:
        """Monotonicity barrier: reaching the band requires crossing a
        level region with the right derivative sign.

        To climb from ``x <= a`` (the start hull) to ``x >= band.lo > a``
        a continuous trajectory must, at some time, have ``x in [a,
        band.lo]`` with ``dx/dt >= 0`` -- during which the other states
        lie inside the tube hull.  If the vector-field component is
        certainly negative on that region, the band is unreachable
        (symmetrically for descents).  This recovers the pruning power
        that scalar radius bounds lose on expanding modes.
        """
        hull = tube.whole()
        a_hi = start[name].hi
        a_lo = start[name].lo
        if band.lo > a_hi:  # ascent needed
            region = hull.with_interval(name, Interval(a_hi, band.lo))
            rate = self.system.eval_field_interval(region, param_box)[name]
            return rate.hi < 0.0
        if band.hi < a_lo:  # descent needed
            region = hull.with_interval(name, Interval(band.hi, a_lo))
            rate = self.system.eval_field_interval(region, param_box)[name]
            return rate.lo > 0.0
        return False

    def _simulate_fits(self, params: Mapping[str, float], x0: Mapping[str, float]) -> bool:
        """Concrete run: does the midpoint candidate thread all bands?"""
        try:
            traj = rk45(
                self.system, x0, (0.0, self.data.horizon + 1e-9),
                params=dict(params), rtol=1e-8, max_step=self.enclosure_step,
            )
        except Exception:
            return False
        for cp in self.data.checkpoints:
            state = traj.at(cp.t)
            for name, (lo, hi) in cp.bands.items():
                if not (lo <= state[name] <= hi):
                    return False
        return True

    # ------------------------------------------------------------------
    def calibrate(self) -> CalibrationResult:
        """Search the parameter box for a data-consistent valuation.

        .. deprecated:: 0.2
            Direct calls are deprecated in favor of the unified facade
            (the ``calibrate`` task of ``repro.api``); this shim
            delegates unchanged.
        """
        warnings.warn(
            "SMTCalibrator.calibrate is deprecated; submit a 'calibrate' "
            "spec through the unified repro.api facade (repro.run / "
            "Engine.run) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._calibrate_impl()

    def _calibrate_impl(self) -> CalibrationResult:
        t0 = time.perf_counter()
        root_params = Box.from_bounds(dict(self.param_ranges))
        state_box = self._initial_state_box()
        init_widths = {k: max(root_params[k].width(), 1e-12) for k in root_params.names}

        if self.use_simulation_guidance and root_params.names:
            mid = root_params.midpoint()
            if self._simulate_fits(mid, state_box.midpoint()):
                cand = Box.from_point(mid)
                fate = self._propagate(cand, Box.from_point(state_box.midpoint()))
                if fate is _Fate.VERIFIED:
                    return CalibrationResult(
                        CalibrationStatus.DELTA_SAT, mid, cand, 1,
                        time.perf_counter() - t0,
                    )

        work = [root_params]
        processed = 0
        saw_unknown = False
        while work:
            if processed >= self.max_boxes:
                saw_unknown = True
                break
            processed += 1
            _progress(
                "calibrate", "branch-and-prune",
                boxes=processed, queue=len(work),
            )
            pbox = work.pop()
            fate = self._propagate(pbox, state_box)
            if fate is _Fate.PRUNED:
                continue
            if fate is _Fate.VERIFIED:
                return CalibrationResult(
                    CalibrationStatus.DELTA_SAT,
                    pbox.midpoint(),
                    pbox,
                    processed,
                    time.perf_counter() - t0,
                )
            # try the box midpoint concretely before splitting
            mid = pbox.midpoint()
            if self.use_simulation_guidance and self._simulate_fits(
                mid, state_box.midpoint()
            ):
                cand = Box.from_point(mid)
                if self._propagate(cand, Box.from_point(state_box.midpoint())) is _Fate.VERIFIED:
                    return CalibrationResult(
                        CalibrationStatus.DELTA_SAT, mid, cand, processed,
                        time.perf_counter() - t0,
                    )
            widest = max(
                pbox.names, key=lambda k: pbox[k].width() / init_widths[k]
            )
            if pbox[widest].width() / init_widths[widest] < 1e-4:
                saw_unknown = True
                continue
            left, right = pbox.split(widest)
            work.append(left)
            work.append(right)

        status = CalibrationStatus.UNKNOWN if saw_unknown else CalibrationStatus.UNSAT
        return CalibrationResult(
            status, boxes_processed=processed, wall_time=time.perf_counter() - t0
        )

    # ------------------------------------------------------------------
    def synthesize_region(
        self, min_width: float = 0.05
    ) -> tuple[list[Box], list[Box], list[Box]]:
        """BioPSy-style guaranteed parameter-set synthesis.

        Returns ``(sat_boxes, unsat_boxes, undecided)``: every point of
        a sat box delta-fits the data; no point of an unsat box fits.
        """
        state_box = self._initial_state_box()
        sat: list[Box] = []
        unsat: list[Box] = []
        undecided: list[Box] = []
        work = [Box.from_bounds(dict(self.param_ranges))]
        processed = 0
        while work:
            processed += 1
            if processed > self.max_boxes:
                undecided.extend(work)
                break
            pbox = work.pop()
            _progress(
                "calibrate", "paving",
                boxes=processed, queue=len(work),
                sat=len(sat), unsat=len(unsat),
            )
            fate = self._propagate(pbox, state_box)
            if fate is _Fate.PRUNED:
                unsat.append(pbox)
            elif fate is _Fate.VERIFIED:
                sat.append(pbox)
            elif pbox.max_width() <= min_width:
                undecided.append(pbox)
            else:
                left, right = pbox.split()
                work.append(left)
                work.append(right)
        return sat, unsat, undecided
