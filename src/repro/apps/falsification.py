"""Model falsification (paper Section IV-A, the "unsat branch").

"If unsat is returned, the model is unfeasible, which means that the
model is unable to satisfy a desired behavior no matter which parameter
values are used.  This can be used to reject model hypotheses."

Two entry points:

* :func:`falsify_with_data` -- the calibration encoding: the model is
  rejected when *no* parameters in the given ranges thread the data
  bands (this is how the paper shows Fenton-Karma cannot reproduce the
  epicardial spike-and-dome morphology).
* :func:`falsify_reachability` -- the BMC encoding: the model is
  rejected when a behavioral goal region is unreachable for all
  parameter values within bounds.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Mapping

from repro.bmc import BMCChecker, BMCOptions, BMCStatus, ReachSpec
from repro.expr import var
from repro.hybrid import HybridAutomaton
from repro.intervals import Box
from repro.logic import Atom
from repro.odes import ODESystem
from repro.solver import DeltaSolver, Status

from .calibration import CalibrationStatus, SMTCalibrator, TimeSeriesData

__all__ = [
    "FalsificationVerdict",
    "falsify_with_data",
    "falsify_reachability",
    "falsify_ascent",
]


@dataclass
class FalsificationVerdict:
    """Outcome of a falsification attempt.

    ``rejected=True`` carries the full one-sided guarantee: the desired
    behavior is infeasible for every parameter value in the ranges.
    ``rejected=False`` with a witness means the behavior was realized
    (model survives); ``rejected=False`` without a witness means the
    budget ran out (inconclusive).
    """

    rejected: bool
    conclusive: bool
    witness_params: dict[str, float] | None = None
    detail: str = ""
    boxes_processed: int = 0

    def __bool__(self) -> bool:
        return self.rejected


def falsify_with_data(
    system: ODESystem,
    data: TimeSeriesData,
    param_ranges: Mapping[str, tuple[float, float]],
    x0: Mapping[str, float] | Box,
    delta: float = 0.05,
    max_boxes: int = 600,
    enclosure_step: float = 0.05,
) -> FalsificationVerdict:
    """Reject ``system`` if no parameters can reproduce ``data``.

    .. deprecated:: 0.2
        Use the ``falsify`` task of :mod:`repro.api` instead; this shim
        delegates unchanged.
    """
    warnings.warn(
        "falsify_with_data is deprecated; submit a 'falsify' spec through "
        "the unified repro.api facade (repro.run / Engine.run) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _falsify_with_data_impl(
        system, data, param_ranges, x0,
        delta=delta, max_boxes=max_boxes, enclosure_step=enclosure_step,
    )


def _falsify_with_data_impl(
    system: ODESystem,
    data: TimeSeriesData,
    param_ranges: Mapping[str, tuple[float, float]],
    x0: Mapping[str, float] | Box,
    delta: float = 0.05,
    max_boxes: int = 600,
    enclosure_step: float = 0.05,
) -> FalsificationVerdict:
    calib = SMTCalibrator(
        system, data, param_ranges, x0,
        delta=delta, max_boxes=max_boxes, enclosure_step=enclosure_step,
    )
    res = calib._calibrate_impl()
    if res.status is CalibrationStatus.UNSAT:
        return FalsificationVerdict(
            True, True, detail="no parameter value fits the data bands",
            boxes_processed=res.boxes_processed,
        )
    if res.status is CalibrationStatus.DELTA_SAT:
        return FalsificationVerdict(
            False, True, witness_params=res.params,
            detail="model reproduces the data (delta-sat witness found)",
            boxes_processed=res.boxes_processed,
        )
    return FalsificationVerdict(
        False, False, detail="budget exhausted (unknown)",
        boxes_processed=res.boxes_processed,
    )


def falsify_reachability(
    automaton: HybridAutomaton,
    spec: ReachSpec,
    param_ranges: Mapping[str, tuple[float, float]] | None = None,
    options: BMCOptions | None = None,
) -> FalsificationVerdict:
    """Reject ``automaton`` if the behavioral goal of ``spec`` is
    unreachable for every parameter value in ``param_ranges``.

    .. deprecated:: 0.2
        Use the ``falsify`` task of :mod:`repro.api` instead; this shim
        delegates unchanged.
    """
    warnings.warn(
        "falsify_reachability is deprecated; submit a 'falsify' spec "
        "through the unified repro.api facade (repro.run / Engine.run) "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _falsify_reachability_impl(automaton, spec, param_ranges, options)


def _falsify_reachability_impl(
    automaton: HybridAutomaton,
    spec: ReachSpec,
    param_ranges: Mapping[str, tuple[float, float]] | None = None,
    options: BMCOptions | None = None,
) -> FalsificationVerdict:
    res = BMCChecker(automaton, options)._check_impl(spec, param_ranges)
    if res.status is BMCStatus.UNSAT:
        return FalsificationVerdict(
            True, True,
            detail=f"goal unreachable within k={spec.max_jumps}, M={spec.time_bound}",
            boxes_processed=res.boxes_processed,
        )
    if res.status is BMCStatus.DELTA_SAT:
        return FalsificationVerdict(
            False, True, witness_params=res.witness_params,
            detail=f"goal reached via {'->'.join(res.mode_path())}",
            boxes_processed=res.boxes_processed,
        )
    return FalsificationVerdict(
        False, False, detail="budget exhausted (unknown)",
        boxes_processed=res.boxes_processed,
    )


def falsify_ascent(
    system: ODESystem,
    variable: str,
    from_level: float,
    to_level: float,
    state_bounds: Mapping[str, tuple[float, float]],
    param_ranges: Mapping[str, tuple[float, float]] | None = None,
    delta: float = 1e-4,
    max_boxes: int = 200_000,
) -> FalsificationVerdict:
    """Barrier falsification: can ``variable`` ever climb from
    ``from_level`` to ``to_level``?

    By the mean value theorem, a continuous trajectory ascending from
    ``variable <= from_level`` to ``variable >= to_level`` must pass
    through the region ``from_level <= variable <= to_level`` with a
    nonnegative derivative; the other states are constrained only by
    their physical bounds (e.g. gating variables in [0, 1]).  We ask the
    delta-decision procedure for such a point::

        exists x in bounds, p in ranges :
            from_level <= x_var <= to_level  and  f_var(x, p) >= 0

    **unsat** proves the ascent impossible for *every* parameter value
    -- a rigorous morphology falsification that needs no flow
    enclosures.  This is the encoding behind the paper's Fenton-Karma
    spike-and-dome result (Section IV-A): the FK voltage cannot re-rise
    through the dome window, for any parameters in physiological
    ranges.  ``delta-sat`` returns a state/parameter witness where the
    ascent is (delta-)possible.

    ``to_level < from_level`` checks the symmetric descent barrier.

    .. deprecated:: 0.2
        Use the ``falsify`` task of :mod:`repro.api` instead; this shim
        delegates unchanged.
    """
    warnings.warn(
        "falsify_ascent is deprecated; submit a 'falsify' spec through "
        "the unified repro.api facade (repro.run / Engine.run) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _falsify_ascent_impl(
        system, variable, from_level, to_level, state_bounds,
        param_ranges, delta=delta, max_boxes=max_boxes,
    )


def _falsify_ascent_impl(
    system: ODESystem,
    variable: str,
    from_level: float,
    to_level: float,
    state_bounds: Mapping[str, tuple[float, float]],
    param_ranges: Mapping[str, tuple[float, float]] | None = None,
    delta: float = 1e-4,
    max_boxes: int = 200_000,
    frontier_size: int = 64,
    shards: int = 1,
    shard_backend: object = "process",
    paving_store: object = None,
    warm_start: bool = True,
    anytime: bool = False,
    kernel: str = "numpy",
) -> FalsificationVerdict:
    if variable not in system.state_names:
        raise ValueError(f"unknown state variable {variable!r}")
    unknown = set(param_ranges or {}) - set(system.params)
    if unknown:
        raise ValueError(f"unknown parameters: {sorted(unknown)}")
    missing = set(system.state_names) - set(state_bounds)
    if missing:
        raise ValueError(f"state bounds missing for {sorted(missing)}")

    # inline parameters that are not searched
    searched = dict(param_ranges or {})
    fixed = [p for p in system.params if p not in searched]
    inlined = system.substitute_params(fixed) if fixed else system

    field = inlined.derivatives[variable]
    lo, hi = (from_level, to_level) if to_level >= from_level else (to_level, from_level)
    rate_atom = Atom(field, strict=False) if to_level >= from_level else Atom(-field, strict=False)
    passage = (var(variable) >= lo) & (var(variable) <= hi)
    query = passage & rate_atom

    dims = {k: tuple(v) for k, v in state_bounds.items()}
    dims[variable] = (lo, hi)
    dims.update(searched)
    box = Box.from_bounds(dims)

    result = DeltaSolver(
        delta=delta, max_boxes=max_boxes, frontier_size=frontier_size,
        shards=shards, shard_backend=shard_backend,
        paving_store=paving_store, warm_start=warm_start, anytime=anytime,
        kernel=kernel,
    )._solve_impl(query, box)
    direction = "ascent" if to_level >= from_level else "descent"
    if result.status is Status.UNSAT:
        return FalsificationVerdict(
            True, True,
            detail=f"{direction} of {variable} from {from_level} to {to_level} "
                   "is impossible for all parameters (barrier unsat)",
            boxes_processed=result.stats.boxes_processed,
        )
    if result.status is Status.DELTA_SAT:
        w = result.witness
        params = {p: w[p] for p in searched}
        return FalsificationVerdict(
            False, True, witness_params=params or None,
            detail=f"{direction} is delta-possible at {w}",
            boxes_processed=result.stats.boxes_processed,
        )
    return FalsificationVerdict(
        False, False, detail="budget exhausted (unknown)",
        boxes_processed=result.stats.boxes_processed,
    )
