"""Application layer (S11 in DESIGN.md): the paper's analysis tasks.

Model calibration and falsification (Section IV-A), therapeutic
strategy identification (IV-B), robustness checking (IV-C), and the
end-to-end Fig. 2 workflow.
"""

from .calibration import (
    CalibrationResult,
    CalibrationStatus,
    Checkpoint,
    SMTCalibrator,
    TimeSeriesData,
)
from .falsification import (
    FalsificationVerdict,
    falsify_ascent,
    falsify_reachability,
    falsify_with_data,
)
from .therapy import (
    PolicyResult,
    TherapyPlan,
    evaluate_policy,
    synthesize_reach_therapy,
    synthesize_threshold_policy,
)
from .robustness import RobustnessResult, check_robustness, stimulus_threshold
from .pipeline import AnalysisPipeline, PipelineReport, PipelineStage

__all__ = [
    "Checkpoint",
    "TimeSeriesData",
    "SMTCalibrator",
    "CalibrationResult",
    "CalibrationStatus",
    "FalsificationVerdict",
    "falsify_with_data",
    "falsify_reachability",
    "falsify_ascent",
    "TherapyPlan",
    "synthesize_reach_therapy",
    "PolicyResult",
    "synthesize_threshold_policy",
    "evaluate_policy",
    "RobustnessResult",
    "check_robustness",
    "stimulus_threshold",
    "AnalysisPipeline",
    "PipelineReport",
    "PipelineStage",
]
