"""Therapeutic strategy identification (paper Section IV-B, Fig. 3).

"The problem of determining which drug to deliver at what time evolves
into a parameter synthesis problem for hybrid automata."

Two synthesis routes:

* :func:`synthesize_reach_therapy` -- the BMC route for the TBI model:
  enumerate mode paths shortest-first (minimizing the number of drugs,
  as the paper asks, "to avoid potential side effects") and synthesize
  decision thresholds such that the automaton reaches the recovery goal.
* :func:`synthesize_threshold_policy` -- the SMC route for safety-style
  objectives (e.g. the IAS model's "CRPC burden stays below a bound for
  the whole horizon"): cross-entropy search over thresholds scored by
  BLTL robustness, followed by a Monte-Carlo confirmation.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Mapping

from repro.bmc import BMCChecker, BMCOptions, BMCStatus, ReachSpec
from repro.hybrid import HybridAutomaton, simulate_hybrid
from repro.logic import Formula
from repro.smc import BLTL, InitialDistribution, cross_entropy_search, monitor, smc_objective

__all__ = [
    "TherapyPlan",
    "synthesize_reach_therapy",
    "PolicyResult",
    "synthesize_threshold_policy",
    "evaluate_policy",
]


@dataclass
class TherapyPlan:
    """A synthesized treatment strategy."""

    found: bool
    drug_sequence: list[str] = field(default_factory=list)  # visited drug modes
    thresholds: dict[str, float] = field(default_factory=dict)
    dwell_times: list[float] = field(default_factory=list)
    mode_path: list[str] = field(default_factory=list)
    n_drugs: int = 0
    detail: str = ""
    paths_tried: int = 0
    boxes_processed: int = 0

    def __bool__(self) -> bool:
        return self.found


def synthesize_reach_therapy(
    automaton: HybridAutomaton,
    goal: Formula,
    threshold_ranges: Mapping[str, tuple[float, float]],
    goal_mode: str = "live",
    max_drugs: int = 3,
    time_bound: float = 60.0,
    options: BMCOptions | None = None,
    forbidden_modes: tuple[str, ...] = ("death",),
) -> TherapyPlan:
    """Find decision thresholds and a shortest drug sequence reaching
    the recovery goal.

    Paths are explored shortest-first, so the returned plan uses the
    minimum number of discrete treatment decisions able to reach the
    goal (paper: "we also aim to minimize the number of drugs used").
    Paths passing through ``forbidden_modes`` are skipped.

    .. deprecated:: 0.2
        Use the ``therapy`` task of :mod:`repro.api` instead; this shim
        delegates unchanged.
    """
    warnings.warn(
        "synthesize_reach_therapy is deprecated; submit a 'therapy' spec "
        "through the unified repro.api facade (repro.run / Engine.run) "
        "instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _synthesize_reach_therapy_impl(
        automaton, goal, threshold_ranges, goal_mode=goal_mode,
        max_drugs=max_drugs, time_bound=time_bound, options=options,
        forbidden_modes=forbidden_modes,
    )


def _synthesize_reach_therapy_impl(
    automaton: HybridAutomaton,
    goal: Formula,
    threshold_ranges: Mapping[str, tuple[float, float]],
    goal_mode: str = "live",
    max_drugs: int = 3,
    time_bound: float = 60.0,
    options: BMCOptions | None = None,
    forbidden_modes: tuple[str, ...] = ("death",),
) -> TherapyPlan:
    opts = options or BMCOptions()
    checker = BMCChecker(automaton, opts)
    from repro.bmc import enumerate_paths

    paths_tried = 0
    total_boxes = 0
    for k in range(max_drugs + 1):
        for path in enumerate_paths(automaton, k, goal_mode):
            if len(path) != k:
                continue  # handled at its own depth
            if any(m in forbidden_modes for m in path.modes):
                continue
            spec = ReachSpec(
                goal=goal, goal_mode=goal_mode, max_jumps=k, time_bound=time_bound
            )
            outcome, boxes = checker._solve_path(
                path, spec, dict(threshold_ranges), automaton.initial_box()
            )
            paths_tried += 1
            total_boxes += boxes
            if outcome is not None and outcome.status is BMCStatus.DELTA_SAT:
                drugs = [m for m in path.modes if m.startswith("drug")]
                return TherapyPlan(
                    True,
                    drug_sequence=drugs,
                    thresholds=outcome.witness_params or {},
                    dwell_times=outcome.witness_dwells or [],
                    mode_path=path.modes,
                    n_drugs=len(set(drugs)),
                    detail=f"path {'->'.join(path.modes)} with {k} decisions",
                    paths_tried=paths_tried,
                    boxes_processed=total_boxes,
                )
    return TherapyPlan(
        False, detail="no feasible strategy within bounds",
        paths_tried=paths_tried, boxes_processed=total_boxes,
    )


# ----------------------------------------------------------------------
# SMC-based policy synthesis (safety objectives)
# ----------------------------------------------------------------------


@dataclass
class PolicyResult:
    """A threshold policy scored by statistical verification."""

    found: bool
    thresholds: dict[str, float] = field(default_factory=dict)
    robustness: float = 0.0
    success_probability: float | None = None
    evaluations: int = 0

    def __bool__(self) -> bool:
        return self.found


def synthesize_threshold_policy(
    automaton: HybridAutomaton,
    phi: BLTL,
    threshold_ranges: Mapping[str, tuple[float, float]],
    init: InitialDistribution | Mapping,
    horizon: float,
    population: int = 24,
    iterations: int = 12,
    seed: int = 0,
    confirm_samples: int = 40,
) -> PolicyResult:
    """Cross-entropy search over treatment thresholds maximizing the
    BLTL robustness of ``phi``; the winner is confirmed by Monte Carlo.

    .. deprecated:: 0.2
        Use the ``therapy`` task of :mod:`repro.api` instead; this shim
        delegates unchanged.
    """
    warnings.warn(
        "synthesize_threshold_policy is deprecated; submit a 'therapy' "
        "spec through the unified repro.api facade (repro.run / "
        "Engine.run) instead",
        DeprecationWarning,
        stacklevel=2,
    )
    return _synthesize_threshold_policy_impl(
        automaton, phi, threshold_ranges, init, horizon,
        population=population, iterations=iterations, seed=seed,
        confirm_samples=confirm_samples,
    )


def _synthesize_threshold_policy_impl(
    automaton: HybridAutomaton,
    phi: BLTL,
    threshold_ranges: Mapping[str, tuple[float, float]],
    init: InitialDistribution | Mapping,
    horizon: float,
    population: int = 24,
    iterations: int = 12,
    seed: int = 0,
    confirm_samples: int = 40,
    rtol: float = 1e-6,
) -> PolicyResult:
    objective = smc_objective(
        automaton, phi, init, horizon, n_samples=3, seed=seed, rtol=rtol
    )
    res = cross_entropy_search(
        objective, dict(threshold_ranges), population=population,
        iterations=iterations, seed=seed, target=None,
    )
    if res.best_fitness <= 0.0:
        return PolicyResult(
            False, res.best_params, res.best_fitness, evaluations=res.evaluations
        )
    # Monte-Carlo confirmation at the winning thresholds
    import random as _random

    init_d = init if isinstance(init, InitialDistribution) else InitialDistribution(dict(init))
    rng = _random.Random(seed + 1)
    states = list(automaton.variables)
    successes = 0
    for _ in range(confirm_samples):
        draw = init_d.sample(rng)
        x0 = {k: draw[k] for k in states}
        traj = simulate_hybrid(
            automaton, x0, t_final=horizon, params=res.best_params, rtol=rtol
        ).flatten()
        if monitor(phi, traj):
            successes += 1
    return PolicyResult(
        True, res.best_params, res.best_fitness, successes / confirm_samples,
        evaluations=res.evaluations,
    )


def evaluate_policy(
    automaton: HybridAutomaton,
    thresholds: Mapping[str, float],
    x0: Mapping[str, float] | None = None,
    horizon: float = 60.0,
    max_jumps: int = 30,
):
    """Simulate a concrete policy; returns the hybrid trajectory."""
    return simulate_hybrid(
        automaton, x0, t_final=horizon, params=dict(thresholds), max_jumps=max_jumps
    )
