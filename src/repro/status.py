"""The shared outcome vocabulary of the analysis framework.

Every subsystem used to speak its own dialect -- ``Status`` in the
solver, ``BMCStatus`` in the BMC layer, ``CalibrationStatus`` in the
calibration app, bare strings in the pipeline report.  The unified API
(:mod:`repro.api`) folds all of them into one enum so reports from any
task are comparable, serializable and switchable-on.

``AnalysisStatus`` mixes in :class:`str`, so comparisons against the
historical string literals (``report.stage == "validated"``) keep
working for code written against the old stringly-typed pipeline.
"""

from __future__ import annotations

import enum

__all__ = ["AnalysisStatus", "PipelineStage"]


class AnalysisStatus(str, enum.Enum):
    """Outcome of an analysis task.

    The first three members mirror the delta-decision verdicts (paper
    Theorem 1); the middle four are the Fig. 2 workflow stages; the
    remaining members cover statistical estimates and batch-execution
    failures.
    """

    # delta-decision verdicts
    DELTA_SAT = "delta-sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"

    # Fig. 2 workflow stages (also used standalone by property checks:
    # VALIDATED = property proven, FALSIFIED = counterexample found)
    FALSIFIED = "falsified"
    CALIBRATED = "calibrated"
    VALIDATED = "validated"
    REFINE = "refine"

    # quantitative outcomes and infrastructure
    ESTIMATED = "estimated"
    ERROR = "error"
    CANCELLED = "cancelled"  # job interrupted at a progress checkpoint

    def __str__(self) -> str:  # repr-friendly: print the value, not the member
        return self.value

    @property
    def conclusive(self) -> bool:
        """Whether the analysis reached a definite verdict."""
        return self not in (
            AnalysisStatus.UNKNOWN,
            AnalysisStatus.ERROR,
            AnalysisStatus.CANCELLED,
        )


#: The Fig. 2 workflow states, shared with :class:`AnalysisStatus` so a
#: pipeline stage *is* a report status (no mapping layer needed).
PipelineStage = AnalysisStatus
