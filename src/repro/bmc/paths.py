"""Mode-path enumeration for bounded reachability.

The paper's ``Reach_{k,M}(H, U)`` encoding (Section III-C) contains a
disjunction over all mode sequences of length <= k.  Like dReach [54],
we enumerate the sequences explicitly (DFS over the jump graph) and
solve one satisfiability problem per path; the encoding's disjunction
is then the union over paths.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.hybrid import HybridAutomaton, Jump

__all__ = ["Path", "enumerate_paths"]


class Path:
    """A mode sequence realized by a concrete list of jumps."""

    __slots__ = ("jumps", "initial_mode")

    def __init__(self, initial_mode: str, jumps: Sequence[Jump]):
        self.initial_mode = initial_mode
        self.jumps = list(jumps)
        mode = initial_mode
        for j in self.jumps:
            if j.source != mode:
                raise ValueError(f"jump {j} does not chain from mode {mode!r}")
            mode = j.target

    @property
    def modes(self) -> list[str]:
        """The visited mode names (length = len(jumps) + 1)."""
        out = [self.initial_mode]
        for j in self.jumps:
            out.append(j.target)
        return out

    @property
    def final_mode(self) -> str:
        return self.modes[-1]

    def __len__(self) -> int:
        return len(self.jumps)

    def __repr__(self) -> str:
        return "Path(" + " -> ".join(self.modes) + ")"


def enumerate_paths(
    automaton: HybridAutomaton,
    max_jumps: int,
    goal_mode: str | None = None,
    allow_self_loops: bool = True,
) -> Iterator[Path]:
    """All jump paths from the initial mode with at most ``max_jumps``
    transitions, optionally ending in ``goal_mode``.

    Paths are yielded shortest-first (BFS layers), which makes the BMC
    driver prefer short witnesses -- e.g. the minimum-drug treatment
    schedules of paper Section IV-B.
    """
    if goal_mode is not None and goal_mode not in automaton.mode_names:
        raise ValueError(f"unknown goal mode {goal_mode!r}")
    frontier: list[list[Jump]] = [[]]
    for depth in range(max_jumps + 1):
        next_frontier: list[list[Jump]] = []
        for jumps in frontier:
            mode = jumps[-1].target if jumps else automaton.initial_mode
            if goal_mode is None or mode == goal_mode:
                yield Path(automaton.initial_mode, jumps)
            if depth < max_jumps:
                for j in automaton.jumps_from(mode):
                    if not allow_self_loops and j.target == j.source:
                        continue
                    next_frontier.append(jumps + [j])
        frontier = next_frontier
