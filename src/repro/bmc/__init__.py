"""Bounded model checking for hybrid automata (S7 in DESIGN.md).

dReach-style ``(k, M)``-reachability (paper Section III-C): mode-path
enumeration plus ICP branch-and-prune over parameters, initial states
and dwell times, with flows discharged by validated enclosures.
"""

from .paths import Path, enumerate_paths
from .reach import BMCChecker, BMCOptions, BMCResult, BMCStatus, ReachSpec

__all__ = [
    "Path",
    "enumerate_paths",
    "BMCChecker",
    "BMCOptions",
    "BMCResult",
    "BMCStatus",
    "ReachSpec",
]
