"""Bounded reachability checking and parameter synthesis (dReach-style).

This module realizes the paper's central computational object: the
``(k, M)``-reachability encoding of Section III-C, solved per mode path
by an ICP branch-and-prune over

* the unknown parameters ``a`` (Definition 12/13),
* the initial continuous state ``x0``, and
* the dwell times ``t_0 ... t_k`` (each bounded by ``M``),

with the ODE flow constraints discharged by validated interval
enclosures (:mod:`repro.odes.enclosure`) instead of a symbolic ODE
theory -- the same role dReal's ODE solver plays inside dReach [54].

Soundness mirrors Theorem 1's one-sided contract:

* ``UNSAT`` is returned only when every box of every path is pruned by
  certainly-false judgments over *enclosures of all trajectories*, so
  the goal is truly unreachable (within the bounds).
* ``DELTA_SAT`` is returned only when a candidate box is *verified*: the
  delta-weakened guards/invariants/goal are certainly true over the
  enclosures, hence a real trajectory delta-satisfying the encoding
  exists.

A simulation-guided shortcut proposes candidates from concrete runs
before resorting to exhaustive splitting.
"""

from __future__ import annotations

import enum
import time
import warnings
from dataclasses import dataclass
from typing import Mapping

from repro.hybrid import HybridAutomaton, formula_margin
from repro.intervals import Box, Interval
from repro.logic import Formula, TrueFormula
from repro.odes import EnclosureError, ReachTube, flow_enclosure, rk45
from repro.solver import Certainty, fixpoint_contract
from repro.solver.eval3 import _eval_formula_impl as eval_formula

from .paths import Path, enumerate_paths

__all__ = ["ReachSpec", "BMCOptions", "BMCStatus", "BMCResult", "BMCChecker"]


class BMCStatus(enum.Enum):
    DELTA_SAT = "delta-sat"
    UNSAT = "unsat"
    UNKNOWN = "unknown"


@dataclass
class ReachSpec:
    """A bounded reachability question about a hybrid automaton.

    Parameters
    ----------
    goal:
        Formula over the continuous variables (and parameters) that must
        hold at the end of the run -- the set ``U`` of Definition 11.
    goal_mode:
        Mode the run must end in, or None for any mode.
    max_jumps:
        The unrolling depth ``k``.
    time_bound:
        Per-mode dwell bound ``M``.
    min_dwell:
        Optional lower bound on each dwell (0 reproduces the paper's
        encoding; positive values exclude Zeno-ish instant chains).
    """

    goal: Formula
    goal_mode: str | None = None
    max_jumps: int = 3
    time_bound: float = 10.0
    min_dwell: float = 0.0


@dataclass
class BMCOptions:
    """Tuning knobs of the BMC search."""

    delta: float = 0.1
    max_boxes_per_path: int = 400
    enclosure_step: float = 0.05
    enclosure_order: int = 2
    max_growth: float = 1e4
    use_simulation_guidance: bool = True
    sim_dwell_halfwidth: float = 1e-4
    contract_tol: float = 1e-2
    verify_step: float | None = None  # finer step for witness verification


@dataclass
class BMCResult:
    """Outcome of a reachability query."""

    status: BMCStatus
    path: Path | None = None
    witness_params: dict[str, float] | None = None
    witness_x0: dict[str, float] | None = None
    witness_dwells: list[float] | None = None
    boxes_processed: int = 0
    paths_explored: int = 0
    wall_time: float = 0.0

    def __bool__(self) -> bool:
        return self.status is BMCStatus.DELTA_SAT

    def mode_path(self) -> list[str] | None:
        return self.path.modes if self.path is not None else None

    def __repr__(self) -> str:
        extra = ""
        if self.path is not None:
            extra = f", path={'->'.join(self.path.modes)}"
        return f"BMCResult({self.status.value}{extra})"


class _Judgment(enum.Enum):
    PRUNED = 0
    VERIFIED = 1
    UNKNOWN = 2


def _dwell_name(i: int) -> str:
    return f"__dwell_{i}"


class BMCChecker:
    """Bounded model checker / parameter synthesizer for hybrid automata.

    Typical use::

        checker = BMCChecker(automaton, options)
        result = checker.check(spec, param_ranges={"k1": (0.0, 2.0)})
        if result:                      # delta-sat
            print(result.witness_params, result.mode_path())
    """

    def __init__(self, automaton: HybridAutomaton, options: BMCOptions | None = None):
        self.automaton = automaton
        self.options = options or BMCOptions()
        self._defaults = Box.from_point(dict(automaton.params))

    def _env(self, box: Box, param_box: Box | None) -> Box:
        """State box extended with parameter values (searched parameter
        intervals override the automaton's point defaults)."""
        env = box.merged(self._defaults) if len(self._defaults) else box
        if param_box is not None:
            env = env.merged(param_box)
        return env

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def check(
        self,
        spec: ReachSpec,
        param_ranges: Mapping[str, tuple[float, float]] | None = None,
        init_box: Box | None = None,
    ) -> BMCResult:
        """Decide reachability of ``spec`` (Definition 13 when
        ``param_ranges`` is nonempty: parameter synthesis).

        Returns delta-sat with a witness (parameters, initial state,
        dwell schedule, path), unsat, or unknown on budget exhaustion.

        .. deprecated:: 0.2
            Direct calls are deprecated in favor of the unified facade
            (the ``reach`` task of ``repro.api``); this shim delegates
            unchanged.
        """
        warnings.warn(
            "BMCChecker.check is deprecated; submit a 'reach' spec through "
            "the unified repro.api facade (repro.run / Engine.run) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        return self._check_impl(spec, param_ranges, init_box)

    def _check_impl(
        self,
        spec: ReachSpec,
        param_ranges: Mapping[str, tuple[float, float]] | None = None,
        init_box: Box | None = None,
    ) -> BMCResult:
        t0 = time.perf_counter()
        param_ranges = dict(param_ranges or {})
        unknown = set(param_ranges) - set(self.automaton.params)
        if unknown:
            raise ValueError(f"unknown parameters: {sorted(unknown)}")
        x0_box = init_box if init_box is not None else self.automaton.initial_box()
        x0_box = x0_box.restrict(self.automaton.variables)

        total_boxes = 0
        n_paths = 0
        any_unknown = False
        for path in enumerate_paths(self.automaton, spec.max_jumps, spec.goal_mode):
            n_paths += 1
            outcome, boxes = self._solve_path(path, spec, param_ranges, x0_box)
            total_boxes += boxes
            if outcome is not None and outcome.status is BMCStatus.DELTA_SAT:
                outcome.boxes_processed = total_boxes
                outcome.paths_explored = n_paths
                outcome.wall_time = time.perf_counter() - t0
                return outcome
            if outcome is not None and outcome.status is BMCStatus.UNKNOWN:
                any_unknown = True
        status = BMCStatus.UNKNOWN if any_unknown else BMCStatus.UNSAT
        return BMCResult(
            status,
            boxes_processed=total_boxes,
            paths_explored=n_paths,
            wall_time=time.perf_counter() - t0,
        )

    # ------------------------------------------------------------------
    # Per-path branch and prune
    # ------------------------------------------------------------------
    def _solve_path(
        self,
        path: Path,
        spec: ReachSpec,
        param_ranges: dict[str, tuple[float, float]],
        x0_box: Box,
    ) -> tuple[BMCResult | None, int]:
        opt = self.options
        n_dwell = len(path.modes)
        dims: dict[str, tuple[float, float]] = {}
        for p, rng in param_ranges.items():
            dims[p] = rng
        for v in self.automaton.variables:
            iv = x0_box[v]
            dims[v] = (iv.lo, iv.hi)
        for i in range(n_dwell):
            dims[_dwell_name(i)] = (spec.min_dwell, spec.time_bound)
        root = Box.from_bounds(dims)
        init_widths = {k: max(root[k].width(), 1e-12) for k in root.names}

        # --- simulation-guided candidate -------------------------------
        if opt.use_simulation_guidance:
            cand = self._simulate_candidate(path, spec, root, param_ranges)
            if cand is not None:
                fine = opt.verify_step or opt.enclosure_step / 5.0
                verified = self._propagate(
                    path, spec, cand, param_ranges, step_override=fine
                )[0]
                if verified is _Judgment.VERIFIED:
                    return self._result_from_box(path, cand, param_ranges), 1

        # --- branch and prune ------------------------------------------
        work = [root]
        processed = 0
        saw_unknown = False
        while work:
            if processed >= opt.max_boxes_per_path:
                saw_unknown = True
                break
            processed += 1
            box = work.pop()
            judgment, contracted = self._propagate(path, spec, box, param_ranges)
            if judgment is _Judgment.PRUNED:
                continue
            if judgment is _Judgment.VERIFIED:
                return self._result_from_box(path, contracted, param_ranges), processed
            # split on the dimension with largest relative width
            widest = max(
                contracted.names,
                key=lambda k: contracted[k].width() / init_widths.get(k, 1.0),
            )
            if contracted[widest].width() / init_widths.get(widest, 1.0) < 1e-4:
                saw_unknown = True  # cannot refine further
                continue
            left, right = contracted.split(widest)
            work.append(left)
            work.append(right)

        if saw_unknown:
            return BMCResult(BMCStatus.UNKNOWN, path), processed
        return None, processed  # path fully pruned (unsat for this path)

    # ------------------------------------------------------------------
    # Interval propagation along a path
    # ------------------------------------------------------------------
    def _propagate(
        self,
        path: Path,
        spec: ReachSpec,
        box: Box,
        param_ranges: dict[str, tuple[float, float]],
        step_override: float | None = None,
    ) -> tuple[_Judgment, Box]:
        opt = self.options
        step = step_override if step_override is not None else opt.enclosure_step
        params = list(param_ranges)
        param_box = box.restrict(params) if params else None
        state_box = box.restrict(self.automaton.variables)
        if state_box.is_empty:
            return _Judgment.PRUNED, box

        all_delta_ok = True
        current = state_box
        box_out = box

        for i, mode_name in enumerate(path.modes):
            dwell = box_out[_dwell_name(i)]
            if dwell.is_empty:
                return _Judgment.PRUNED, box_out
            mode = self.automaton.mode(mode_name)
            system = self.automaton.mode_system(mode_name)

            # cheap rejection: the invariant must hold already at entry
            if not isinstance(mode.invariant, TrueFormula):
                if eval_formula(mode.invariant, self._env(current, param_box)) is Certainty.CERTAIN_FALSE:
                    return _Judgment.PRUNED, box_out

            try:
                tube_a = self._enclose(system, current, dwell.lo, param_box, step)
                entry = tube_a.final() if tube_a.steps else current
                window = max(dwell.width(), 1e-9)
                step_b = min(step, max(window / 2.0, 1e-9))
                tube_b = flow_enclosure(
                    system, entry, window, param_box,
                    max_step=step_b, order=opt.enclosure_order,
                    max_growth=opt.max_growth,
                )
            except EnclosureError:
                # enclosure blow-up: cannot judge; treat as unknown split
                return _Judgment.UNKNOWN, box_out

            # invariant along the dwell
            inv = mode.invariant
            if not isinstance(inv, TrueFormula):
                verdicts = self._check_invariant(
                    inv, tube_a, tube_b, dwell, param_box
                )
                if verdicts is _Judgment.PRUNED:
                    return _Judgment.PRUNED, box_out
                if verdicts is _Judgment.UNKNOWN:
                    all_delta_ok = False

            exit_box = tube_b.whole() if tube_b.steps else entry
            exit_env = self._env(exit_box, param_box)

            if i < len(path.jumps):
                jump = path.jumps[i]
                c = eval_formula(jump.guard, exit_env)
                if c is Certainty.CERTAIN_FALSE:
                    return _Judgment.PRUNED, box_out
                if eval_formula(jump.guard, exit_env, opt.delta) is not Certainty.CERTAIN_TRUE:
                    all_delta_ok = False
                contracted = fixpoint_contract(jump.guard, exit_env, tol=opt.contract_tol)
                if contracted.is_empty:
                    return _Judgment.PRUNED, box_out
                if params:
                    new_params = contracted.restrict(params)
                    box_out = box_out.merged(new_params)
                    param_box = new_params
                post = {}
                reset_env = dict(contracted)
                for v in self.automaton.variables:
                    if v in jump.reset:
                        post[v] = jump.reset[v].eval_interval(reset_env)
                    else:
                        post[v] = contracted[v]
                current = Box(post)
                if current.is_empty:
                    return _Judgment.PRUNED, box_out
            else:
                c = eval_formula(spec.goal, exit_env)
                if c is Certainty.CERTAIN_FALSE:
                    return _Judgment.PRUNED, box_out
                if eval_formula(spec.goal, exit_env, opt.delta) is not Certainty.CERTAIN_TRUE:
                    all_delta_ok = False

        return (_Judgment.VERIFIED if all_delta_ok else _Judgment.UNKNOWN), box_out

    def _enclose(
        self, system, start: Box, duration: float, param_box: Box | None,
        step: float | None = None,
    ) -> ReachTube:
        if duration <= 1e-12:
            return ReachTube([], system.state_names)
        return flow_enclosure(
            system,
            start,
            duration,
            param_box,
            max_step=step if step is not None else self.options.enclosure_step,
            order=self.options.enclosure_order,
            max_growth=self.options.max_growth,
        )

    def _check_invariant(
        self,
        inv: Formula,
        tube_a: ReachTube,
        tube_b: ReachTube,
        dwell: Interval,
        param_box: Box | None,
    ) -> _Judgment:
        """PRUNED if the invariant certainly fails before any feasible
        exit; UNKNOWN if delta-truth cannot be certified; VERIFIED else."""
        delta_ok = True
        for tube, offset in ((tube_a, 0.0), (tube_b, dwell.lo)):
            for step in tube.steps:
                env = self._env(step.enclosure, param_box)
                c = eval_formula(inv, env)
                if c is Certainty.CERTAIN_FALSE:
                    # violation starting at absolute time offset+step.time.lo
                    t_violate = offset + step.time.lo
                    if t_violate <= dwell.lo + 1e-12:
                        return _Judgment.PRUNED
                    # dwell times beyond t_violate are infeasible, but the
                    # box may still contain feasible shorter dwells
                    return _Judgment.UNKNOWN
                if eval_formula(inv, env, self.options.delta) is not Certainty.CERTAIN_TRUE:
                    delta_ok = False
        return _Judgment.VERIFIED if delta_ok else _Judgment.UNKNOWN

    # ------------------------------------------------------------------
    # Simulation guidance
    # ------------------------------------------------------------------
    def _simulate_candidate(
        self,
        path: Path,
        spec: ReachSpec,
        root: Box,
        param_ranges: dict[str, tuple[float, float]],
    ) -> Box | None:
        """Concrete run through the path at the box midpoint; on success
        returns a narrow candidate box around the discovered schedule."""
        opt = self.options
        mid = root.midpoint()
        params = {**self.automaton.params, **{p: mid[p] for p in param_ranges}}
        state = {v: mid[v] for v in self.automaton.variables}
        dwells: list[float] = []
        t_accum = 0.0
        for i, mode_name in enumerate(path.modes):
            system = self.automaton.mode_system(mode_name)
            try:
                traj = rk45(
                    system, state, (0.0, spec.time_bound), params=params,
                    rtol=1e-7, max_step=opt.enclosure_step,
                )
            except Exception:
                return None
            if i < len(path.jumps):
                jump = path.jumps[i]

                def margin(s: dict[str, float]) -> float:
                    return formula_margin(jump.guard, {**params, **s})

                t_cross = _first_rising(traj, margin)
                if t_cross is None or t_cross < spec.min_dwell:
                    return None
                dwells.append(t_cross)
                state = jump.apply_reset(traj.at(t_cross), params)
                t_accum += t_cross
            else:
                # prefer the earliest robust goal hit (short dwells make
                # the verification tube cheap); fall back to max margin
                slack = 2.0 * opt.delta
                best_t, best_m = None, -float("inf")
                chosen = None
                for t in traj.times:
                    if float(t) < spec.min_dwell:
                        continue
                    m = formula_margin(spec.goal, {**params, **traj.at(float(t))})
                    if m > best_m:
                        best_t, best_m = float(t), m
                    if chosen is None and m >= slack:
                        chosen = float(t)
                if chosen is None:
                    if best_t is None or best_m < 0.0:
                        return None
                    chosen = best_t
                dwells.append(chosen)
        # narrow candidate box around the schedule
        h = opt.sim_dwell_halfwidth
        cand = dict(root)
        for p in param_ranges:
            cand[p] = Interval.point(mid[p])
        for v in self.automaton.variables:
            cand[v] = Interval.point(mid[v])
        for i, d in enumerate(dwells):
            lo = max(d - h, 0.0)
            cand[_dwell_name(i)] = Interval(lo, d + h)
        return Box(cand)

    # ------------------------------------------------------------------
    def _result_from_box(
        self, path: Path, box: Box, param_ranges: dict[str, tuple[float, float]]
    ) -> BMCResult:
        mid = box.midpoint()
        return BMCResult(
            BMCStatus.DELTA_SAT,
            path=path,
            witness_params={p: mid[p] for p in param_ranges},
            witness_x0={v: mid[v] for v in self.automaton.variables},
            witness_dwells=[mid[_dwell_name(i)] for i in range(len(path.modes))],
        )


def _first_rising(traj, fn, tol: float = 1e-10) -> float | None:
    """First rising zero-crossing of ``fn`` along ``traj`` (or t0 if
    already nonnegative)."""
    first = fn(traj.at(traj.t0))
    if first >= 0.0:
        return traj.t0
    values = [fn(dict(zip(traj.names, row))) for row in traj.states]
    for i in range(1, len(values)):
        if values[i - 1] < 0.0 <= values[i]:
            lo, hi = float(traj.times[i - 1]), float(traj.times[i])
            flo = values[i - 1]
            while hi - lo > tol * max(1.0, abs(hi)):
                m = 0.5 * (lo + hi)
                fm = fn(traj.at(m))
                if (flo < 0.0) == (fm < 0.0):
                    lo, flo = m, fm
                else:
                    hi = m
            return hi
    return None
