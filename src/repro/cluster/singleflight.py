"""Single-flight dedup: identical in-flight specs collapse to one solve.

The persistent :class:`~repro.service.cache.ResultCache` already makes
the *second* submission of a spec free -- but only after the first one
finished.  Under cohort-scale traffic the expensive case is N identical
specs arriving *while* the first is still solving: without dedup the
service performs N solves and caches N identical reports.

:class:`SingleFlight` closes that window.  The first submission of a
``spec_key`` becomes the **leader**; every identical submission that
arrives before the leader lands becomes a **follower** and performs no
work at all.  When the leader finishes, the engine lands every follower
with a byte-identical copy of the leader's report (and forwards copies
of the leader's progress events while it runs).

The registry is engine-local state, deliberately not shared across
replicas: two replicas racing the same spec costs one redundant solve,
which the shared result cache absorbs -- the coordination-free choice
matches the torn-tail-tolerant journal philosophy of the job store.

Stdlib-only and import-light on purpose: :mod:`repro.api.engine`
imports this module without touching the worker-pool stack.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable

__all__ = ["SingleFlight"]


class SingleFlight:
    """Leader/follower registry keyed on content-addressed spec keys.

    All transitions happen under one lock, so a submission is either a
    follower of a live leader or the new leader of its key -- never a
    missed wake-up in between.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._flights: dict[str, dict[str, Any]] = {}
        self.leaders = 0
        self.followers = 0

    # ------------------------------------------------------------------
    def lead_or_follow(self, key: str, job: Any) -> Any | None:
        """Register ``job`` under ``key``.

        Returns ``None`` if ``job`` became the leader (the caller must
        dispatch it and eventually call :meth:`land`), or the leader
        job if ``job`` was attached as a follower (the caller must not
        dispatch it).
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                self._flights[key] = {"leader": job, "followers": []}
                self.leaders += 1
                return None
            flight["followers"].append(job)
            self.followers += 1
            return flight["leader"]

    def land(self, key: str, leader: Any) -> list[Any]:
        """Close the flight of ``key``; returns the followers to settle.

        A no-op empty list if ``leader`` is not the current leader of
        ``key`` (a stale landing after the key was re-led).
        """
        with self._lock:
            flight = self._flights.get(key)
            if flight is None or flight["leader"] is not leader:
                return []
            del self._flights[key]
            return flight["followers"]

    def detach(self, key: str, follower: Any) -> bool:
        """Remove one follower (it was cancelled); True if removed."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                return False
            try:
                flight["followers"].remove(follower)
            except ValueError:
                return False
            return True

    def followers_of(self, key: str, leader: Any) -> Iterable[Any]:
        """Snapshot of the live followers of ``leader`` (event fan-out)."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None or flight["leader"] is not leader:
                return ()
            return tuple(flight["followers"])

    def stats(self) -> dict[str, int]:
        """Counters: flights led, follows served, currently in flight."""
        with self._lock:
            return {
                "leaders": self.leaders,
                "followers": self.followers,
                "in_flight": len(self._flights),
            }
