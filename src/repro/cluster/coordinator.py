"""The lease server of the worker pool.

A :class:`ClusterCoordinator` owns the authoritative work queue.
Submitters (the :class:`~repro.cluster.backend.ClusterBackend`) enqueue
*work units* -- a :func:`~repro.cluster.protocol.fn_ref` reference plus
pickled arguments -- and get a :class:`concurrent.futures.Future` back.
Workers (``repro worker host:port``) pull units over TCP:

``poll``
    Long-poll for work.  The reply is a *lease*: the unit travels to
    exactly one worker with a time-to-live; until the lease expires the
    unit is that worker's.
``heartbeat``
    Renews the lease while the unit is executing, so a unit is only
    ever declared lost when its worker actually stopped talking
    (death, network partition), not merely because it is slow.
``result``
    Completes the unit and resolves its future.  Stale results (a unit
    already re-queued *and* completed elsewhere) are ignored, so the
    at-least-once execution of the lease protocol still yields
    exactly-once completion.

A janitor thread re-queues units whose lease expired -- at the **front**
of the queue, so recovered work is not penalized -- and fails a unit's
future only after ``max_attempts`` leases were lost, which bounds how
long a poisoned unit (one that kills every worker it touches) can
stall a run.

Every unit is a pure function of its arguments (the sharded solver's
epoch passes, the engine's spec runner), so re-execution after a
worker death is transparent: the lock-step epoch driver above cannot
distinguish a re-run from a slow first run, and byte-identical results
follow from the same argument-purity that makes process shards
deterministic.
"""

from __future__ import annotations

import collections
import itertools
import socketserver
import threading
import time
from concurrent.futures import Future
from typing import Any, Callable

from .protocol import AuthError, ClusterError, fn_ref, recv_msg, send_msg

__all__ = ["ClusterCoordinator"]


class _Unit:
    """One leased work unit."""

    __slots__ = ("id", "ref", "args", "future", "attempts", "worker", "deadline")

    def __init__(self, unit_id: str, ref: str, args: tuple):
        self.id = unit_id
        self.ref = ref
        self.args = args
        self.future: Future = Future()
        self.attempts = 0
        self.worker: str | None = None
        self.deadline: float | None = None


class ClusterCoordinator:
    """TCP lease server distributing work units to pool workers.

    Parameters
    ----------
    host / port:
        Bind address; ``port=0`` picks an ephemeral port (read
        :attr:`address` after construction).  Bind a routable host to
        accept workers from other machines.
    token:
        Optional shared secret; when set, every message must carry it.
    lease_ttl:
        Seconds a lease stays valid without a heartbeat.  Workers
        heartbeat at ``lease_ttl / 3``, so only a dead or partitioned
        worker loses its lease.
    max_attempts:
        Leases a unit may lose before its future fails with
        :class:`ClusterError` (bounds the stall of a poisoned unit).
    poll_hold:
        Upper bound on how long a worker ``poll`` blocks server-side
        waiting for work (long-polling keeps idle latency near zero
        without hammering the socket).
    io_timeout:
        Bound (seconds) on every socket read/write of one connection.
        A peer that sends a partial frame -- or nothing -- is dropped
        when it expires, so stalled connections cannot pin handler
        threads (the long-poll *hold* is a condition wait, not socket
        I/O, and is bounded separately by ``poll_hold``).
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        token: str | None = None,
        lease_ttl: float = 10.0,
        max_attempts: int = 5,
        poll_hold: float = 2.0,
        io_timeout: float = 10.0,
    ):
        self.token = token
        self.lease_ttl = float(lease_ttl)
        self.max_attempts = int(max_attempts)
        self.poll_hold = float(poll_hold)
        self.io_timeout = float(io_timeout)

        self._lock = threading.Lock()
        self._work = threading.Condition(self._lock)
        self._pending: collections.deque[str] = collections.deque()
        self._units: dict[str, _Unit] = {}
        self._workers: dict[str, dict[str, Any]] = {}
        self._ids = itertools.count(1)
        self._stopping = False
        self.counters = {
            "submitted": 0,
            "completed": 0,
            "failed": 0,
            "requeued": 0,
            "stale_results": 0,
        }

        coordinator = self

        class Handler(socketserver.BaseRequestHandler):
            def handle(self) -> None:
                # bound every read/write: a partial frame must time out
                # instead of pinning this handler thread forever
                self.request.settimeout(coordinator.io_timeout)
                try:
                    msg = recv_msg(self.request, coordinator.token)
                except TimeoutError:
                    return  # stalled/slowloris peer: drop the connection
                except AuthError as exc:
                    reply = {"op": "error", "kind": "auth", "error": str(exc)}
                except Exception as exc:  # a bad frame must not kill the pool
                    reply = {"op": "error", "error": f"{type(exc).__name__}: {exc}"}
                else:
                    try:
                        reply = coordinator._dispatch(msg)
                    except Exception as exc:
                        reply = {
                            "op": "error",
                            "error": f"{type(exc).__name__}: {exc}",
                        }
                try:
                    send_msg(self.request, reply, coordinator.token)
                except OSError:  # incl. a timed-out write
                    pass  # peer vanished; its lease will expire

        class Server(socketserver.ThreadingTCPServer):
            allow_reuse_address = True
            daemon_threads = True

        self._server = Server((host, port), Handler)
        self.host, self.port = self._server.server_address[:2]
        self._serve_thread = threading.Thread(
            target=self._server.serve_forever,
            name=f"repro-cluster-coordinator:{self.port}",
            daemon=True,
        )
        self._janitor_stop = threading.Event()
        self._janitor = threading.Thread(
            target=self._janitor_loop, name="repro-cluster-janitor", daemon=True
        )
        self._serve_thread.start()
        self._janitor.start()

    # ------------------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        """The ``(host, port)`` workers connect to."""
        return (self.host, self.port)

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        """Enqueue one work unit; returns its future."""
        ref = fn_ref(fn)
        with self._lock:
            if self._stopping:
                raise ClusterError("coordinator is shut down")
            unit = _Unit(f"u{next(self._ids)}", ref, args)
            self._units[unit.id] = unit
            self._pending.append(unit.id)
            self.counters["submitted"] += 1
            self._work.notify()
        return unit.future

    def status(self) -> dict[str, Any]:
        """Queue depth, leases, worker registry and counters (JSON-able)."""
        now = time.monotonic()
        with self._lock:
            leased = [u for u in self._units.values() if u.worker is not None]
            return {
                "address": f"{self.host}:{self.port}",
                "pending": len(self._pending),
                "leased": len(leased),
                "workers": {
                    wid: {
                        "last_seen": round(now - w["last_seen"], 3),
                        "done": w["done"],
                    }
                    for wid, w in sorted(self._workers.items())
                },
                "counters": dict(self.counters),
                "lease_ttl": self.lease_ttl,
            }

    def stop(self) -> None:
        """Stop serving; outstanding futures fail, polling workers exit.

        Idempotent.  Workers that poll after the stop receive a
        ``shutdown`` reply (until the socket closes, after which their
        connection attempts fail and they back off and exit).
        """
        with self._lock:
            if self._stopping:
                return
            self._stopping = True
            units = list(self._units.values())
            self._units.clear()
            self._pending.clear()
            self._work.notify_all()
        for unit in units:
            if not unit.future.done():
                unit.future.set_exception(ClusterError("coordinator shut down"))
        self._janitor_stop.set()
        self._server.shutdown()
        self._server.server_close()
        self._janitor.join(timeout=5.0)
        self._serve_thread.join(timeout=5.0)

    def __enter__(self) -> "ClusterCoordinator":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # Message handling (one call per connection, any worker thread)
    # ------------------------------------------------------------------
    def _dispatch(self, msg: dict) -> dict:
        if self.token is not None and msg.get("token") != self.token:
            return {"op": "error", "kind": "auth", "error": "bad or missing token"}
        op = msg.get("op")
        if op == "poll":
            return self._op_poll(msg)
        if op == "heartbeat":
            return self._op_heartbeat(msg)
        if op == "result":
            return self._op_result(msg)
        if op == "hello":
            self._touch_worker(str(msg.get("worker", "?")))
            return {"op": "ok"}
        if op == "status":
            return {"op": "status", "status": self.status()}
        return {"op": "error", "error": f"unknown op {op!r}"}

    def _touch_worker(self, worker: str) -> None:
        # caller may or may not hold the lock; dict item assignment is
        # atomic and the registry is advisory (status/monitoring only)
        entry = self._workers.setdefault(worker, {"last_seen": 0.0, "done": 0})
        entry["last_seen"] = time.monotonic()

    def _op_poll(self, msg: dict) -> dict:
        worker = str(msg.get("worker", "?"))
        hold = min(float(msg.get("hold", 0.0)), self.poll_hold)
        deadline = time.monotonic() + hold
        with self._lock:
            self._touch_worker(worker)
            while True:
                if self._stopping:
                    return {"op": "shutdown"}
                unit = self._lease_next(worker)
                if unit is not None:
                    return {
                        "op": "work",
                        "unit": unit.id,
                        "fn": unit.ref,
                        "args": unit.args,
                        "lease_ttl": self.lease_ttl,
                    }
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return {"op": "idle"}
                self._work.wait(timeout=remaining)

    def _lease_next(self, worker: str) -> _Unit | None:
        # caller holds the lock
        while self._pending:
            unit_id = self._pending.popleft()
            unit = self._units.get(unit_id)
            if unit is None:
                continue
            if unit.attempts == 0:
                # first lease: flip PENDING -> RUNNING (or honor a cancel)
                if not unit.future.set_running_or_notify_cancel():
                    del self._units[unit_id]
                    continue
            elif unit.future.done():
                # re-lease of an expired unit; the future is RUNNING
                # already and must not be transitioned again
                del self._units[unit_id]
                continue
            unit.worker = worker
            unit.deadline = time.monotonic() + self.lease_ttl
            unit.attempts += 1
            return unit
        return None

    def _op_heartbeat(self, msg: dict) -> dict:
        worker = str(msg.get("worker", "?"))
        unit_id = str(msg.get("unit", ""))
        with self._lock:
            self._touch_worker(worker)
            unit = self._units.get(unit_id)
            if unit is not None and unit.worker == worker:
                unit.deadline = time.monotonic() + self.lease_ttl
                return {"op": "ok", "known": True}
        # the unit was re-queued (lease expired) or completed elsewhere;
        # the worker may abandon it -- any late result is ignored as stale
        return {"op": "ok", "known": False}

    def _op_result(self, msg: dict) -> dict:
        worker = str(msg.get("worker", "?"))
        unit_id = str(msg.get("unit", ""))
        with self._lock:
            self._touch_worker(worker)
            unit = self._units.pop(unit_id, None)
            if unit is None:
                self.counters["stale_results"] += 1
                return {"op": "ok", "stale": True}
            entry = self._workers.setdefault(worker, {"last_seen": 0.0, "done": 0})
            entry["done"] += 1
            if msg.get("ok", False):
                self.counters["completed"] += 1
            else:
                self.counters["failed"] += 1
        # resolve outside the lock: future callbacks run synchronously
        if not unit.future.done():
            if msg.get("ok", False):
                unit.future.set_result(msg.get("payload"))
            else:
                unit.future.set_exception(
                    ClusterError(
                        f"worker {worker} failed unit {unit_id}: "
                        f"{msg.get('error', 'unknown error')}"
                    )
                )
        return {"op": "ok", "stale": False}

    # ------------------------------------------------------------------
    # Lease expiry
    # ------------------------------------------------------------------
    def _janitor_loop(self) -> None:
        interval = max(0.05, min(1.0, self.lease_ttl / 4.0))
        while not self._janitor_stop.wait(interval):
            self._requeue_expired()

    def _requeue_expired(self) -> None:
        now = time.monotonic()
        poisoned: list[_Unit] = []
        with self._lock:
            for unit in list(self._units.values()):
                if unit.worker is None or unit.deadline is None:
                    continue
                if unit.deadline > now:
                    continue
                if unit.attempts >= self.max_attempts:
                    del self._units[unit.id]
                    poisoned.append(unit)
                    continue
                unit.worker = None
                unit.deadline = None
                self._pending.appendleft(unit.id)  # recovered work goes first
                self.counters["requeued"] += 1
                self._work.notify()
        for unit in poisoned:
            self.counters["failed"] += 1
            if not unit.future.done():
                unit.future.set_exception(
                    ClusterError(
                        f"unit {unit.id} lost {unit.attempts} leases "
                        f"(max_attempts={self.max_attempts}); giving up"
                    )
                )
