"""Multi-node scale-out: one cluster, one cache, many tenants.

This package extends the single-machine service layer
(:mod:`repro.service`) across machines.  It has four largely
independent parts, stitched together by :class:`repro.api.Engine` and
the ``repro serve`` HTTP surface:

- :mod:`repro.cluster.coordinator` / :mod:`repro.cluster.worker` /
  :mod:`repro.cluster.backend` -- a stdlib-only TCP worker pool.
  A :class:`ClusterCoordinator` leases work units to workers that join
  with ``repro worker host:port``; leases carry heartbeats, and units
  whose worker dies are re-queued and re-executed (every unit is a pure
  function, so re-execution is transparent).  :class:`ClusterBackend`
  wraps the coordinator in the :class:`~repro.service.backends.ExecutorBackend`
  protocol, so the sharded solver's lock-step epoch loop
  (:mod:`repro.solver.shard`) and the engine's job dispatch run across
  machines *unchanged* -- golden-verdict byte-identity holds across the
  distributed path exactly as it does for process shards.
- :mod:`repro.cluster.jobstore` -- :class:`JobStore`, an append-only,
  torn-tail-tolerant JSONL journal of job submissions and terminal
  reports.  ``repro serve --job-store`` survives restarts (queued and
  interrupted jobs re-run) and N replicas can share one store behind a
  load balancer.
- :mod:`repro.cluster.singleflight` -- :class:`SingleFlight`,
  collapsing identical in-flight specs onto one leader solve; followers
  attach to the leader's progress events and receive byte-identical
  report copies.
- :mod:`repro.cluster.quota` -- :class:`TokenBucket`,
  :class:`TenantPolicy` and :class:`TenantScheduler`: per-tenant
  admission control and weighted fair dequeue, keyed on the HTTP
  ``X-Tenant`` header.

Imports are lazy (PEP 562) so that :mod:`repro.api.engine` can import
the single-flight helper without dragging the whole worker-pool stack
(and its transitive imports) into every engine construction.
"""

from typing import Any

__all__ = [
    "ClusterBackend",
    "ClusterCoordinator",
    "ClusterError",
    "JobStore",
    "SingleFlight",
    "TenantPolicy",
    "TenantScheduler",
    "TokenBucket",
    "run_worker",
    "spawn_local_workers",
]

_EXPORTS = {
    "ClusterBackend": "repro.cluster.backend",
    "ClusterCoordinator": "repro.cluster.coordinator",
    "ClusterError": "repro.cluster.protocol",
    "JobStore": "repro.cluster.jobstore",
    "SingleFlight": "repro.cluster.singleflight",
    "TenantPolicy": "repro.cluster.quota",
    "TenantScheduler": "repro.cluster.quota",
    "TokenBucket": "repro.cluster.quota",
    "run_worker": "repro.cluster.worker",
    "spawn_local_workers": "repro.cluster.worker",
}


def __getattr__(name: str) -> Any:
    """Resolve the public surface lazily (PEP 562)."""
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__() -> list:
    """Expose the lazy exports to ``dir()``."""
    return sorted(__all__)
