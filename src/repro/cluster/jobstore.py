"""Persistent job journal: ``repro serve`` survives restarts.

The :class:`JobStore` is an append-only JSONL journal in the mold of
:class:`repro.monitor.store.EventStore` -- one record per line, never
rewritten, torn final line (a crash mid-append) tolerated on replay,
corruption *elsewhere* refused.  Two record kinds:

``submit``
    A job entered the service: id, spec dict, tenant, timestamp.
``done``
    The job reached a terminal state: id, state, and (for completed
    work) the full report dict.  The special state ``"interrupted"``
    marks a graceful drain -- the work was cut short through no fault
    of its own and must re-run on recovery, unlike a user
    ``"cancelled"`` which is final.

Recovery (:meth:`recover`) folds the journal into one record per job:
a ``submit`` without a terminal ``done`` means the server died with the
job queued or running, so a restarting server re-submits it.  The
journal is shared-safe for N replicas: every record is one
``O_APPEND`` write, and replicas use distinct job-id prefixes so ids
never collide (see ``Engine(job_prefix=...)``).  The prefixes also
scope recovery -- a restarting replica re-runs only *its own*
unfinished jobs, never work still queued or running on a live sibling
(:meth:`repro.service.server.ServiceServer._recover` filters on the
engine's prefix).
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.jobs import JobHandle

__all__ = ["JobStore", "RERUN_STATES"]

#: Recovered states that mean "the work never finished: run it again".
RERUN_STATES = frozenset({"queued", "interrupted"})


class JobStore:
    """Append-only JSONL journal of job submissions and terminal reports.

    Parameters
    ----------
    path:
        Journal file; created (with parents) if missing, appended to
        if present -- restarting against an existing store is the
        recovery path, not an error.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        parent = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(parent, exist_ok=True)
        self._lock = threading.Lock()
        self._fh = open(self.path, "a", encoding="utf-8")
        # in-memory membership: which ids this PROCESS journaled, so the
        # engine's done-hook can distinguish service jobs (journal them)
        # from jobs the store never saw (engine-internal, skip)
        self._submitted: set[str] = set()
        self._finished: set[str] = set()
        self.appended = 0

    # ------------------------------------------------------------------
    def _append(self, record: dict) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        with self._lock:
            if self._fh is None:
                raise ValueError("job store is closed")
            self._fh.write(line + "\n")  # one write per record: append-atomic
            self._fh.flush()
            self.appended += 1

    def record_submit(
        self, job_id: str, spec_dict: dict, tenant: str = ""
    ) -> None:
        """Journal one accepted job (before any backend sees it)."""
        self._append(
            {
                "kind": "submit",
                "id": job_id,
                "spec": spec_dict,
                "tenant": tenant,
                "t": time.time(),
            }
        )
        with self._lock:
            self._submitted.add(job_id)

    def record_done(
        self, job_id: str, state: str, report_dict: dict | None = None
    ) -> bool:
        """Journal a terminal transition; idempotent per process.

        Returns ``False`` (and writes nothing) if this process already
        journaled a terminal record for ``job_id`` -- the done-hook and
        the drain path can race without double-writing.
        """
        with self._lock:
            if job_id in self._finished:
                return False
            self._finished.add(job_id)
        record: dict[str, Any] = {
            "kind": "done",
            "id": job_id,
            "state": state,
            "t": time.time(),
        }
        if report_dict is not None:
            record["report"] = report_dict
        self._append(record)
        return True

    def knows(self, job_id: str) -> bool:
        """Whether this process journaled a ``submit`` for ``job_id``."""
        with self._lock:
            return job_id in self._submitted

    def flush(self) -> None:
        """Flush buffered writes to the OS."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()

    def close(self) -> None:
        """Flush and close the journal (idempotent)."""
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    # ------------------------------------------------------------------
    def recover(self) -> dict[str, dict]:
        """Fold the journal into one record per job, submission order.

        Returns ``{job_id: {"spec": dict, "tenant": str, "state": str,
        "report": dict | None}}`` where ``state`` is ``"queued"`` for
        jobs with no terminal record (the server died holding them) and
        the journaled terminal state otherwise.  States in
        :data:`RERUN_STATES` are the ones a restarting server must
        re-submit.

        A torn final line is skipped (crash mid-append); a corrupt line
        anywhere else raises ``ValueError`` -- that is damage, not an
        interrupted write.
        """
        self.flush()
        jobs: dict[str, dict] = {}
        if not os.path.exists(self.path):
            return jobs
        with open(self.path, "r", encoding="utf-8") as fh:
            lines = fh.readlines()
        for i, line in enumerate(lines):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                if i == len(lines) - 1:
                    break  # torn tail from a crash: recoverable
                raise ValueError(f"{self.path}: corrupt journal line {i + 1}")
            job_id = record.get("id")
            kind = record.get("kind")
            if kind == "submit":
                jobs[job_id] = {
                    "spec": record.get("spec", {}),
                    "tenant": record.get("tenant", ""),
                    "state": "queued",
                    "report": None,
                }
            elif kind == "done" and job_id in jobs:
                jobs[job_id]["state"] = record.get("state", "done")
                jobs[job_id]["report"] = record.get("report")
        return jobs

    def record_job(self, job: "JobHandle") -> None:
        """Convenience: journal a :class:`JobHandle`'s terminal state."""
        summary = job.summary(with_report=True)
        self.record_done(
            job.id, summary.get("state", "done"), summary.get("report")
        )
