"""`ClusterBackend`: the worker pool as an `ExecutorBackend`.

The backend owns the submitting side of the pool: it starts (or binds)
a :class:`~repro.cluster.coordinator.ClusterCoordinator` in-process and
forwards ``submit(fn, *args)`` to it.  Because it satisfies the same
:class:`~repro.service.backends.ExecutorBackend` protocol as the
thread/process backends, everything above it -- the engine's job
dispatch and, crucially, :mod:`repro.solver.shard`'s lock-step epoch
loop -- runs across machines *unchanged*.  Byte-identical golden
verdicts through the cluster path follow directly: the epoch driver
merges shard results in lexicographic order no matter which worker
returned them, or how many times a unit was re-leased.

Two modes:

``ClusterBackend(workers=N)``
    Self-contained local pool: binds an ephemeral loopback port and
    spawns ``N`` ``repro worker`` subprocesses.  The distributed
    analogue of ``ProcessBackend(workers=N)``.
``ClusterBackend(host=..., port=..., workers=0)``
    Open pool: binds the given address and waits for external
    ``repro worker HOST:PORT`` processes to join (what
    ``--backend cluster:HOST:PORT`` constructs).
"""

from __future__ import annotations

import subprocess
import time
from concurrent.futures import Future
from typing import Any, Callable

from repro.service.backends import ExecutorBackend

from .coordinator import ClusterCoordinator
from .worker import spawn_local_workers, stop_local_workers

__all__ = ["ClusterBackend"]


class ClusterBackend(ExecutorBackend):
    """Distributed worker-pool backend over a lease coordinator.

    Lazy like the pooled backends: the coordinator binds and local
    workers spawn on first :meth:`submit`, and the backend is reusable
    after :meth:`shutdown` (a fresh pool is built on the next submit).
    """

    name = "cluster"
    distributed = True

    def __init__(
        self,
        workers: int | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        token: str | None = None,
        lease_ttl: float = 10.0,
        max_attempts: int = 5,
    ):
        self.workers = 2 if workers is None else int(workers)
        self.host = host
        self.port = port
        self.token = token
        self.lease_ttl = lease_ttl
        self.max_attempts = max_attempts
        self._coordinator: ClusterCoordinator | None = None
        self._procs: list[subprocess.Popen] = []

    # ------------------------------------------------------------------
    @property
    def coordinator(self) -> ClusterCoordinator:
        """The live coordinator (starting the pool if needed)."""
        return self._ensure()

    @property
    def procs(self) -> list[subprocess.Popen]:
        """Local worker subprocesses (tests kill one to exercise leases)."""
        return self._procs

    def _ensure(self) -> ClusterCoordinator:
        if self._coordinator is None:
            self._coordinator = ClusterCoordinator(
                self.host,
                self.port,
                token=self.token,
                lease_ttl=self.lease_ttl,
                max_attempts=self.max_attempts,
            )
            if self.workers > 0:
                self._procs = spawn_local_workers(
                    self._coordinator.address, self.workers, token=self.token
                )
        return self._coordinator

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        return self._ensure().submit(fn, *args)

    def status(self) -> dict[str, Any]:
        """Coordinator status plus local-subprocess liveness."""
        status = self._ensure().status()
        status["local_workers"] = {
            "spawned": len(self._procs),
            "alive": sum(1 for p in self._procs if p.poll() is None),
        }
        return status

    def wait_for_workers(self, n: int, timeout: float = 30.0) -> None:
        """Block until ``n`` workers have said hello (tests/CI helper)."""
        coordinator = self._ensure()
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if len(coordinator.status()["workers"]) >= n:
                return
            time.sleep(0.05)
        raise TimeoutError(f"fewer than {n} workers joined within {timeout}s")

    def shutdown(self, wait: bool = True) -> None:
        coordinator, self._coordinator = self._coordinator, None
        procs, self._procs = self._procs, []
        if coordinator is not None:
            coordinator.stop()
        if procs:
            stop_local_workers(procs, timeout=5.0 if wait else 0.5)

    def __repr__(self) -> str:
        return (
            f"ClusterBackend(workers={self.workers}, "
            f"host={self.host!r}, port={self.port})"
        )
