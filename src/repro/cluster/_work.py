"""Tiny pure work functions for cluster tests and benchmarks.

Work units travel by reference and :func:`~repro.cluster.protocol.resolve_fn`
only imports ``repro.*`` modules, so even trivial probe functions must
live inside the package.  Everything here is a pure function of its
arguments -- the same property the real work units (the sharded
solver's epoch passes) rely on for transparent re-execution after a
lost lease.
"""

from __future__ import annotations

import time


def echo(*args):
    """Return the arguments unchanged (round-trip probe)."""
    return args


def add(a, b):
    """Return ``a + b``."""
    return a + b


def boom(message):
    """Raise ``ValueError(message)`` (failure-path probe)."""
    raise ValueError(message)


def napping_echo(delay, value):
    """Sleep ``delay`` seconds, then return ``value`` (lease probe)."""
    time.sleep(float(delay))
    return value
