"""Per-tenant quotas and fair scheduling for the job service.

Two independent mechanisms, both keyed on the HTTP ``X-Tenant`` header
(absent header = the ``""`` default tenant):

Admission (:class:`TokenBucket`)
    A classic token bucket per tenant: sustained ``rate`` requests per
    second with bursts up to ``burst``.  An over-rate submission is
    rejected *at the door* with 429 + ``Retry-After`` -- it never
    touches the engine, the journal, or the queue.

Scheduling (:class:`TenantScheduler`)
    Admitted jobs enter per-tenant FIFO queues and are released to the
    engine by weighted fair dequeue: among tenants that have queued
    work and are under their ``max_running`` ceiling, the next job
    goes to the tenant with the smallest ``served / weight`` ratio --
    so a weight-2 tenant drains twice as fast as a weight-1 tenant,
    and a flood from one tenant cannot starve the others.  A global
    ``max_running`` bounds total concurrency; ``None`` dispatches
    everything immediately (queueing disabled, admission still
    applies).

The scheduler owns no threads: the service calls :meth:`next_job` from
whatever thread made capacity (a submission, a completion) and
dispatches what it gets.  Everything is deterministic given the
arrival order, which keeps the scheduling tests exact.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.jobs import JobHandle

__all__ = ["TokenBucket", "TenantPolicy", "TenantScheduler"]


class TokenBucket:
    """Token-bucket rate limiter: ``rate`` tokens/s, capacity ``burst``."""

    def __init__(self, rate: float, burst: float):
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = time.monotonic()
        self._lock = threading.Lock()

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available.

        Returns ``0.0`` on success, else the seconds until ``n`` tokens
        will have accumulated (the ``Retry-After`` hint).
        """
        with self._lock:
            now = time.monotonic()
            self._tokens = min(
                self.burst, self._tokens + (now - self._stamp) * self.rate
            )
            self._stamp = now
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            if self.rate <= 0:
                return float("inf")
            return (n - self._tokens) / self.rate


@dataclass
class TenantPolicy:
    """Quota and scheduling knobs of one tenant.

    ``rate``/``burst`` bound admission (``rate=None`` admits
    everything); ``weight`` sets the fair-share ratio; ``max_running``
    caps the tenant's concurrent jobs (``None`` = only the global cap
    applies).
    """

    weight: float = 1.0
    rate: float | None = None
    burst: float = 1.0
    max_running: int | None = None


class TenantScheduler:
    """Admission control + weighted fair dequeue over per-tenant queues."""

    def __init__(
        self,
        *,
        max_running: int | None = None,
        default: TenantPolicy | None = None,
        policies: dict[str, TenantPolicy] | None = None,
    ):
        self.max_running = max_running
        self.default = default or TenantPolicy()
        self.policies = dict(policies or {})
        self._lock = threading.Lock()
        self._queues: dict[str, deque] = {}
        self._served: dict[str, int] = {}
        self._running: dict[str, int] = {}
        self._running_jobs: set[str] = set()
        self._buckets: dict[str, TokenBucket] = {}
        self.counters = {
            "admitted": 0,
            "throttled": 0,
            "dispatched": 0,
            "completed": 0,
        }

    def policy(self, tenant: str) -> TenantPolicy:
        """The effective policy of ``tenant``."""
        return self.policies.get(tenant, self.default)

    # ------------------------------------------------------------------
    def admit(self, tenant: str) -> float:
        """Rate-limit one submission; ``0.0`` admits, ``> 0`` throttles.

        The positive value is the ``Retry-After`` hint in seconds.
        """
        pol = self.policy(tenant)
        if pol.rate is None:
            with self._lock:
                self.counters["admitted"] += 1
            return 0.0
        with self._lock:
            bucket = self._buckets.get(tenant)
            if bucket is None:
                bucket = self._buckets[tenant] = TokenBucket(pol.rate, pol.burst)
        wait = bucket.try_acquire()
        with self._lock:
            self.counters["admitted" if wait == 0.0 else "throttled"] += 1
        return wait

    def enqueue(self, job: "JobHandle") -> None:
        """Queue one admitted job for fair dispatch."""
        with self._lock:
            self._queues.setdefault(job.tenant, deque()).append(job)

    def next_job(self) -> "JobHandle | None":
        """Release the next job by weighted fair share, if capacity allows.

        Returns ``None`` when every queue is empty or every eligible
        tenant is at a concurrency ceiling.  The released job is
        counted as running until :meth:`release`.
        """
        with self._lock:
            while True:
                if (
                    self.max_running is not None
                    and len(self._running_jobs) >= self.max_running
                ):
                    return None
                best: str | None = None
                best_ratio = float("inf")
                for tenant, queue in sorted(self._queues.items()):
                    if not queue:
                        continue
                    pol = self.policy(tenant)
                    if (
                        pol.max_running is not None
                        and self._running.get(tenant, 0) >= pol.max_running
                    ):
                        continue
                    weight = max(pol.weight, 1e-9)
                    ratio = self._served.get(tenant, 0) / weight
                    if ratio < best_ratio:
                        best, best_ratio = tenant, ratio
                if best is None:
                    return None
                job = self._queues[best].popleft()
                if job.done() or job.cancel_requested:
                    continue  # cancelled while queued; pick again
                self._served[best] = self._served.get(best, 0) + 1
                self._running[best] = self._running.get(best, 0) + 1
                self._running_jobs.add(job.id)
                self.counters["dispatched"] += 1
                return job

    def release(self, job: "JobHandle") -> bool:
        """Return a finished job's slot; ``False`` if it never held one."""
        with self._lock:
            if job.id not in self._running_jobs:
                return False
            self._running_jobs.discard(job.id)
            n = self._running.get(job.tenant, 1) - 1
            if n > 0:
                self._running[job.tenant] = n
            else:
                self._running.pop(job.tenant, None)
            self.counters["completed"] += 1
            return True

    def remove(self, job: "JobHandle") -> bool:
        """Drop a still-queued job (cancellation); ``False`` if gone."""
        with self._lock:
            queue = self._queues.get(job.tenant)
            if queue is None:
                return False
            try:
                queue.remove(job)
            except ValueError:
                return False
            return True

    def queued_jobs(self) -> list:
        """Snapshot of every queued (not yet released) job."""
        with self._lock:
            return [job for queue in self._queues.values() for job in queue]

    def snapshot(self) -> dict[str, Any]:
        """JSON-able scheduling state for the status surface."""
        with self._lock:
            return {
                "max_running": self.max_running,
                "running": len(self._running_jobs),
                "queued": {
                    t: len(q) for t, q in sorted(self._queues.items()) if q
                },
                "served": dict(sorted(self._served.items())),
                "counters": dict(self.counters),
            }
