"""Wire protocol of the cluster worker pool: framed pickle over TCP.

Every exchange is one short-lived connection carrying one request
message and one reply message.  A message is a plain dict, serialized
with :mod:`pickle` behind a 4-byte big-endian length prefix and a
32-byte HMAC-SHA256 of the payload -- numpy chunk payloads (the
sharded solver ships ``(n, dim)`` bound arrays per epoch) round-trip
natively, and the stdlib is the only dependency.

Security model: the pool is for **trusted networks only**.  Three
guards bound the blast radius of a stray connection:

- every frame is HMAC-authenticated with the pool's shared ``token``
  (absent token = the empty key) and :func:`recv_msg` verifies the MAC
  **before** unpickling, so a peer that does not hold the token cannot
  reach the deserializer at all -- crafted pickles from strangers are
  dropped pre-auth;
- the ``token`` also travels inside each message and is re-checked by
  the coordinator before the operation is acted on; and
- work-unit callables travel **by reference** (``module:qualname``),
  never by value, and :func:`resolve_fn` refuses to import anything
  outside the ``repro`` package -- a coordinator cannot make a worker
  run arbitrary code, only the framework's own pure work functions.

These are accident- and stray-connection guards, not a full security
boundary: anyone who holds the token can feed pickle to the
deserializer, and the transport is neither encrypted nor
replay-protected.  Deploy coordinators and workers inside one trust
boundary (same host, private network, or an authenticated tunnel),
exactly like a redis or dask deployment, and treat the token like a
password when binding routable interfaces (``cluster:HOST:PORT``).
"""

from __future__ import annotations

import hashlib
import hmac
import importlib
import pickle
import socket
import struct
from typing import Any, Callable

__all__ = [
    "ClusterError",
    "AuthError",
    "send_msg",
    "recv_msg",
    "request",
    "fn_ref",
    "resolve_fn",
    "parse_address",
]

#: Upper bound on one frame; an epoch chunk of bounds arrays is a few
#: MB at the very most, so anything near this is a corrupt length.
MAX_FRAME = 512 * 1024 * 1024

_LEN = struct.Struct(">I")

#: Fixed size of the per-frame HMAC-SHA256 digest.
_MAC_LEN = hashlib.sha256().digest_size


def _frame_mac(token: str | None, blob: bytes) -> bytes:
    """The HMAC of one frame, keyed by the pool token ("" when unset)."""
    return hmac.new((token or "").encode("utf-8"), blob, hashlib.sha256).digest()


class ClusterError(RuntimeError):
    """A cluster-level failure (protocol, lease, or worker loss)."""


class AuthError(ClusterError):
    """The frame MAC or message token did not match the pool's token."""


def send_msg(sock: socket.socket, msg: dict, token: str | None = None) -> None:
    """Write one length-prefixed, HMAC-authenticated message."""
    blob = pickle.dumps(msg, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_LEN.pack(len(blob)) + _frame_mac(token, blob) + blob)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    parts = []
    while n:
        chunk = sock.recv(min(n, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed mid-frame")
        parts.append(chunk)
        n -= len(chunk)
    return b"".join(parts)


def recv_msg(sock: socket.socket, token: str | None = None) -> dict:
    """Read one message, verifying its HMAC **before** unpickling.

    A MAC mismatch raises :class:`AuthError` without the payload ever
    reaching :func:`pickle.loads` -- the deserializer is behind the
    authentication check, not in front of it.
    """
    (length,) = _LEN.unpack(_recv_exact(sock, _LEN.size))
    if length > MAX_FRAME:
        raise ClusterError(f"frame of {length} bytes exceeds MAX_FRAME")
    mac = _recv_exact(sock, _MAC_LEN)
    blob = _recv_exact(sock, length)
    if not hmac.compare_digest(mac, _frame_mac(token, blob)):
        raise AuthError(
            "frame failed HMAC authentication (pool token mismatch); "
            "payload discarded undeserialized"
        )
    msg = pickle.loads(blob)
    if not isinstance(msg, dict):
        raise ClusterError(f"expected a message dict, got {type(msg).__name__}")
    return msg


def request(
    address: tuple[str, int],
    msg: dict,
    timeout: float | None = 30.0,
    token: str | None = None,
) -> dict:
    """One round-trip: connect, send ``msg``, return the reply.

    Frames are authenticated with ``token``, defaulting to the
    ``"token"`` field of ``msg`` itself (every pool message carries
    it), so callers configure the secret exactly once.

    Raises :class:`OSError` on connection failure and
    :class:`ClusterError` if the peer replied with an error message.
    """
    if token is None:
        value = msg.get("token")
        token = value if isinstance(value, str) else None
    with socket.create_connection(address, timeout=timeout) as sock:
        send_msg(sock, msg, token)
        reply = recv_msg(sock, token)
    if reply.get("op") == "error":
        kind = reply.get("kind", "")
        if kind == "auth":
            raise AuthError(reply.get("error", "authentication failed"))
        raise ClusterError(reply.get("error", "coordinator error"))
    return reply


# ----------------------------------------------------------------------
# Work-function references
# ----------------------------------------------------------------------


def fn_ref(fn: Callable[..., Any]) -> str:
    """The ``module:qualname`` wire reference of a work function.

    Only module-level callables of the ``repro`` package can travel --
    the restriction :func:`resolve_fn` enforces on the receiving side
    is asserted on the sending side too, so misuse fails at submit
    time, not in a worker log.
    """
    module = getattr(fn, "__module__", "") or ""
    qualname = getattr(fn, "__qualname__", "") or ""
    if not (module == "repro" or module.startswith("repro.")):
        raise ClusterError(
            f"cluster work functions must live in the repro package, "
            f"got {module!r}:{qualname!r}"
        )
    if "." in qualname or "<" in qualname:
        raise ClusterError(
            f"cluster work functions must be module-level, got {qualname!r}"
        )
    return f"{module}:{qualname}"


def resolve_fn(ref: str) -> Callable[..., Any]:
    """Import the callable a :func:`fn_ref` reference names.

    Refuses modules outside the ``repro`` package: a coordinator can
    only ask a worker to run the framework's own work functions.
    """
    module_name, _, qualname = ref.partition(":")
    if not qualname or not (
        module_name == "repro" or module_name.startswith("repro.")
    ):
        raise ClusterError(f"refusing to resolve work function {ref!r}")
    fn = getattr(importlib.import_module(module_name), qualname, None)
    if not callable(fn):
        raise ClusterError(f"work function {ref!r} does not resolve to a callable")
    return fn


def parse_address(text: str) -> tuple[str, int]:
    """Parse a ``host:port`` pool address string."""
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)
