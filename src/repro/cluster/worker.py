"""The worker side of the pool: poll, execute, heartbeat, report.

:func:`run_worker` is the long-running loop behind ``repro worker
host:port``.  It long-polls the coordinator for a lease, resolves the
work function *by reference* (``repro.*`` modules only -- see
:mod:`repro.cluster.protocol`), executes it, and reports the result.
While a unit runs, a sidecar thread heartbeats at a third of the lease
TTL so the coordinator never mistakes a slow unit for a dead worker.

Failure handling is deliberately one-sided: the worker never retries a
*unit* (the coordinator's lease janitor owns retries); it only retries
*connections*, with linear backoff, and exits once the coordinator has
been unreachable for ``max_retries`` consecutive attempts or has
explicitly replied ``shutdown``.  An error *reply* (the coordinator is
alive but refused the message) never kills the worker either: polls
back off and retry, and an undeliverable result is abandoned to the
lease janitor.  Only :class:`~repro.cluster.protocol.AuthError` is
fatal -- a wrong token is a configuration error no retry can fix.

:func:`spawn_local_workers` launches workers of the current
interpreter as subprocesses (``python -m repro worker ...``) with the
in-repo source tree prepended to ``PYTHONPATH``, so uninstalled
checkouts work the same as installed ones.  This is how
:class:`~repro.cluster.backend.ClusterBackend` populates a local pool
and how the tests kill a worker mid-run.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
import traceback
from typing import Any

from .protocol import AuthError, ClusterError, request, resolve_fn

__all__ = ["run_worker", "spawn_local_workers", "default_worker_id"]


def default_worker_id() -> str:
    """``hostname-pid``, unique across a pool of machines."""
    return f"{socket.gethostname()}-{os.getpid()}"


def _heartbeat_loop(
    address: tuple[str, int],
    token: str | None,
    worker_id: str,
    unit: str,
    interval: float,
    stop: threading.Event,
) -> None:
    while not stop.wait(interval):
        try:
            reply = request(
                address,
                {"op": "heartbeat", "token": token, "worker": worker_id, "unit": unit},
                timeout=interval,
            )
            if not reply.get("known", True):
                return  # lease lost; result will be reported as stale
        except (OSError, ClusterError):
            pass  # transient; the next beat may land before the TTL


def run_worker(
    address: tuple[str, int],
    *,
    token: str | None = None,
    worker_id: str | None = None,
    poll_hold: float = 2.0,
    max_retries: int = 30,
    retry_delay: float = 1.0,
    stop_event: threading.Event | None = None,
    once: bool = False,
) -> int:
    """Join the pool at ``address`` and execute units until shutdown.

    Returns the number of units executed.  ``once=True`` returns after
    the first executed unit (or the first idle poll) -- used by tests.
    ``stop_event`` allows an embedding thread to request exit between
    units.
    """
    worker_id = worker_id or default_worker_id()
    stop_event = stop_event or threading.Event()
    executed = 0
    failures = 0
    try:
        request(address, {"op": "hello", "token": token, "worker": worker_id})
    except AuthError:
        raise
    except OSError:
        pass  # coordinator may still be coming up; the poll loop retries

    while not stop_event.is_set():
        try:
            reply = request(
                address,
                {
                    "op": "poll",
                    "token": token,
                    "worker": worker_id,
                    "hold": poll_hold,
                },
                timeout=poll_hold + 30.0,
            )
            failures = 0
        except AuthError:
            raise
        except (OSError, ClusterError):
            # connection failure OR an error reply (e.g. a transient
            # dispatch hiccup) -- both are retried, neither may kill
            # the worker and silently shrink the pool
            failures += 1
            if failures >= max_retries:
                return executed
            stop_event.wait(min(retry_delay * failures, 10.0))
            continue

        op = reply.get("op")
        if op == "shutdown":
            return executed
        if op != "work":
            if once:
                return executed
            continue

        unit = str(reply["unit"])
        lease_ttl = float(reply.get("lease_ttl", 10.0))
        beat_stop = threading.Event()
        beat = threading.Thread(
            target=_heartbeat_loop,
            args=(address, token, worker_id, unit, max(0.1, lease_ttl / 3.0), beat_stop),
            name=f"repro-worker-heartbeat:{unit}",
            daemon=True,
        )
        beat.start()
        try:
            fn = resolve_fn(str(reply["fn"]))
            payload = fn(*reply.get("args", ()))
            result = {"op": "result", "token": token, "worker": worker_id,
                      "unit": unit, "ok": True, "payload": payload}
        except BaseException as exc:
            result = {
                "op": "result", "token": token, "worker": worker_id,
                "unit": unit, "ok": False,
                "error": f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            }
        finally:
            beat_stop.set()
        executed += 1
        for attempt in range(max_retries):
            try:
                request(address, result)
                break
            except AuthError:
                raise  # misconfigured token: retrying cannot fix it
            except ClusterError:
                # the coordinator is alive but rejected the delivery:
                # the result is lost, the lease janitor re-queues the
                # unit -- stay in the pool instead of dying
                break
            except OSError:
                if stop_event.wait(min(retry_delay * (attempt + 1), 10.0)):
                    return executed
        else:
            return executed  # coordinator gone for good
        if once:
            return executed
    return executed


# ----------------------------------------------------------------------
# Local subprocess pools
# ----------------------------------------------------------------------


def _src_pythonpath() -> str:
    """``PYTHONPATH`` that makes ``import repro`` work in a child."""
    import repro

    src = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    return f"{src}{os.pathsep}{existing}" if existing else src


def spawn_local_workers(
    address: tuple[str, int],
    n: int,
    *,
    token: str | None = None,
) -> list[subprocess.Popen]:
    """Spawn ``n`` worker subprocesses joined to the pool at ``address``."""
    host, port = address
    env = dict(os.environ, PYTHONPATH=_src_pythonpath())
    procs = []
    for _ in range(max(0, int(n))):
        cmd = [sys.executable, "-m", "repro", "worker", f"{host}:{port}"]
        if token:
            cmd += ["--token", token]
        procs.append(
            subprocess.Popen(
                cmd,
                env=env,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.DEVNULL,
            )
        )
    return procs


def stop_local_workers(procs: list[subprocess.Popen], timeout: float = 5.0) -> None:
    """Terminate (then kill) local worker subprocesses."""
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    deadline = time.monotonic() + timeout
    for proc in procs:
        remaining = max(0.0, deadline - time.monotonic())
        try:
            proc.wait(timeout=remaining)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait()
