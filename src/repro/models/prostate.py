"""Prostate cancer intermittent androgen suppression (IAS) model.

The personalized-therapy case study of paper Section IV-B ([38],
HSCC'15): a two-mode hybrid automaton switching between on-treatment
(androgen suppression) and off-treatment, with PSA-level thresholds
``r0`` (pause treatment) and ``r1`` (resume treatment) as the
*synthesizable* therapy parameters.

The continuous dynamics follow the Ideta-style model used in [38]:

* ``x`` -- androgen-dependent (hormone-sensitive) tumor cells,
* ``y`` -- androgen-independent (castration-resistant) cells,
* ``z`` -- serum androgen level,
* serum PSA is read out as ``x + y``.

Dynamics (per day), following Ideta et al.'s growth/death balance::

    G_x(z) = alpha_x (k1 + (1 - k1) z/(z + k2))
           - beta_x (k3 + (1 - k3) z/(z + k4))
    dx/dt = G_x(z) x - m1 (1 - z/z0) x
    dy/dt = m1 (1 - z/z0) x + alpha_y (1 - d * z/z0) y
    dz/dt = -z/tau                (on treatment)
    dz/dt = (z0 - z)/tau          (off treatment)

With ``k1 = 0`` and ``k3 = 8`` the AD death rate is ~8x stronger at
zero androgen than at normal levels: PSA falls during treatment and
regrows off treatment, the clinical IAS cycling.

The mutation term ``m1 (1 - z/z0)`` converts AD cells to AI cells
faster at low androgen; the patient-specific constant ``d`` controls
whether androgen *suppresses* AI growth (d > 1: off-treatment phases
shrink the resistant clone -- the rationale of intermittent therapy) or
not (d < 1: relapse is unavoidable and IAS only delays it).  These are
exactly the regimes whose therapy verdicts differ in [38].
"""

from __future__ import annotations

from repro.expr import var
from repro.hybrid import HybridAutomaton, Jump, Mode
from repro.intervals import Box
from repro.odes import ODESystem

__all__ = [
    "IAS_DEFAULT_PARAMS",
    "PATIENT_PROFILES",
    "ias_model",
    "ias_on_treatment_ode",
    "psa",
]

IAS_DEFAULT_PARAMS: dict[str, float] = {
    "alpha_x": 0.0204,  # AD proliferation ceiling [1/day]
    "beta_x": 0.0076,   # AD apoptosis scale
    "alpha_y": 0.0242,  # AI proliferation rate
    "m1": 5e-5,         # maximal mutation rate AD -> AI
    "z0": 12.0,         # normal androgen level [nmol/L]
    "tau": 12.5,        # androgen dynamics time constant [day]
    "k1": 0.0,          # androgen-independent fraction of AD growth
    "k2": 2.0,          # androgen half-saturation for AD growth
    "k3": 8.0,          # apoptosis amplification at zero androgen
    "k4": 0.5,          # androgen half-saturation for AD death
    "d": 1.2,           # androgen suppression of AI growth (patient-specific)
    "r0": 4.0,          # PSA level to pause treatment [ng/mL]
    "r1": 10.0,         # PSA level to resume treatment
}

#: Three synthetic patient profiles spanning the qualitative regimes of
#: [38]: responder (d > 1, IAS can control the resistant clone),
#: intermediate (d ~ 1), and non-responder (d < 1, relapse inevitable).
PATIENT_PROFILES: dict[str, dict[str, float]] = {
    "patient_A": {"d": 1.4, "alpha_y": 0.0242},
    "patient_B": {"d": 1.0, "alpha_y": 0.0242},
    "patient_C": {"d": 0.3, "alpha_y": 0.0320},
}


def _dynamics(on_treatment: bool) -> dict:
    x, y, z = var("x"), var("y"), var("z")
    alpha_x, beta_x = var("alpha_x"), var("beta_x")
    alpha_y, m1 = var("alpha_y"), var("m1")
    z0, tau, d = var("z0"), var("tau"), var("d")
    k1, k2, k3, k4 = var("k1"), var("k2"), var("k3"), var("k4")
    growth = alpha_x * (k1 + (1.0 - k1) * z / (z + k2))
    death = beta_x * (k3 + (1.0 - k3) * z / (z + k4))
    mutation = m1 * (1.0 - z / z0)
    dx = (growth - death) * x - mutation * x
    dy = mutation * x + alpha_y * (1.0 - d * z / z0) * y
    dz = -z / tau if on_treatment else (z0 - z) / tau
    return {"x": dx, "y": dy, "z": dz}


def ias_model(
    patient: str | dict[str, float] | None = None,
    x0: float = 15.0,
    y0: float = 0.01,
) -> HybridAutomaton:
    """The two-mode IAS hybrid automaton.

    Parameters
    ----------
    patient:
        A profile name from :data:`PATIENT_PROFILES`, a dict of
        parameter overrides, or None for defaults.
    x0, y0:
        Initial tumor burdens (PSA(0) = x0 + y0, diagnosis level).

    The automaton starts on-treatment.  Treatment pauses when PSA drops
    below ``r0`` and resumes when PSA exceeds ``r1``; ``r0``/``r1`` are
    ordinary parameters, so the therapy-design question "which
    thresholds keep the patient controlled?" is parameter synthesis
    (Definition 13) -- the exact formulation of [38].
    """
    overrides: dict[str, float] = {}
    if isinstance(patient, str):
        try:
            overrides = dict(PATIENT_PROFILES[patient])
        except KeyError:
            raise KeyError(
                f"unknown patient {patient!r}; choose from {sorted(PATIENT_PROFILES)}"
            ) from None
    elif isinstance(patient, dict):
        overrides = dict(patient)
    params = {**IAS_DEFAULT_PARAMS, **overrides}

    x, y = var("x"), var("y")
    r0, r1 = var("r0"), var("r1")
    psa_expr = x + y
    return HybridAutomaton(
        variables=["x", "y", "z"],
        modes=[
            Mode("on", _dynamics(True)),
            Mode("off", _dynamics(False)),
        ],
        jumps=[
            Jump("on", "off", guard=(r0 - psa_expr >= 0)),
            Jump("off", "on", guard=(psa_expr - r1 >= 0)),
        ],
        initial_mode="on",
        init=Box.from_bounds(
            {"x": (x0, x0), "y": (y0, y0), "z": (params["z0"], params["z0"])}
        ),
        params=params,
        name="ias",
    )


def ias_on_treatment_ode(patient: str | dict[str, float] | None = None) -> ODESystem:
    """Single-mode continuous-androgen-suppression model (the non-
    intermittent baseline therapy)."""
    overrides: dict[str, float] = {}
    if isinstance(patient, str):
        overrides = dict(PATIENT_PROFILES[patient])
    elif isinstance(patient, dict):
        overrides = dict(patient)
    params = {**IAS_DEFAULT_PARAMS, **overrides}
    return ODESystem(_dynamics(True), params, name="ias_on")


def psa(state: dict[str, float]) -> float:
    """Serum PSA readout: total tumor burden ``x + y``."""
    return state["x"] + state["y"]
