"""Biological model library (S10 in DESIGN.md).

Published models behind the paper's case studies (cardiac FK/BCF,
prostate IAS, TBI cell-death network, mass-action signaling) plus
standard toys for tests and benchmarks.
"""

from .toys import (
    bouncing_ball,
    damped_oscillator,
    decay,
    logistic,
    lotka_volterra,
    sir,
    thermostat,
    van_der_pol,
)
from .cardiac import (
    BCF_EPI_PARAMS,
    FK_BR_PARAMS,
    APFeatures,
    action_potential,
    ap_features,
    bcf_hybrid,
    bcf_mode,
    bueno_cherry_fenton,
    fenton_karma,
    fenton_karma_hybrid,
    fenton_karma_mode,
    fenton_karma_rest,
)
from .prostate import (
    IAS_DEFAULT_PARAMS,
    PATIENT_PROFILES,
    ias_model,
    ias_on_treatment_ode,
    psa,
)
from .radiation import DRUG_MODES, TBI_DEFAULT_PARAMS, tbi_model
from .massaction import (
    erk_cascade,
    erk_cascade_ode,
    find_equilibrium,
    kinetic_proofreading,
    kinetic_proofreading_ode,
    receptor_ligand,
)

__all__ = [
    "decay",
    "logistic",
    "lotka_volterra",
    "sir",
    "damped_oscillator",
    "van_der_pol",
    "thermostat",
    "bouncing_ball",
    "FK_BR_PARAMS",
    "BCF_EPI_PARAMS",
    "fenton_karma",
    "fenton_karma_hybrid",
    "fenton_karma_mode",
    "fenton_karma_rest",
    "bueno_cherry_fenton",
    "bcf_hybrid",
    "bcf_mode",
    "APFeatures",
    "ap_features",
    "action_potential",
    "IAS_DEFAULT_PARAMS",
    "PATIENT_PROFILES",
    "ias_model",
    "ias_on_treatment_ode",
    "psa",
    "TBI_DEFAULT_PARAMS",
    "DRUG_MODES",
    "tbi_model",
    "kinetic_proofreading",
    "kinetic_proofreading_ode",
    "erk_cascade",
    "erk_cascade_ode",
    "receptor_ligand",
    "find_equilibrium",
]
