"""Cardiac action-potential models: Fenton-Karma and Bueno-Cherry-Fenton.

These are the case-study models of paper Section IV-A ([37], CMSB'14):

* **Fenton-Karma (FK)** [55]: the 3-variable (u, v, w) minimal model.
  The paper's falsification result: FK *cannot* reproduce the
  "spike-and-dome" action-potential morphology of epicardial cells --
  once the fast current inactivates, du/dt stays negative through
  repolarization, so the voltage cannot rise again after the notch.

* **Bueno-Cherry-Fenton (BCF)** [56]: the 4-variable (u, v, w, s)
  minimal ventricular model, whose epicardial parameterization *does*
  produce the dome; parameter changes (e.g. in tau_so1) shorten the APD
  (tachycardia-like) or block repolarization (fibrillation-like).

Both models are written with Heaviside gates H(u - theta).  We provide

* a *smooth* single-mode :class:`~repro.odes.ODESystem` rendering
  (steep sigmoids replace the Heavisides), used for simulation and
  feature extraction, and
* a *hybrid automaton* rendering where the state space is partitioned
  at the gate thresholds and every Heaviside resolves to a constant in
  each mode -- the translation used by the paper's dReach encoding.

Voltage ``u`` is dimensionless (0 rest, ~1 peak, matching [55]/[56]);
time is in milliseconds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.expr import Const, Expr, sigmoid, tanh, var
from repro.hybrid import HybridAutomaton, Jump, Mode
from repro.intervals import Box
from repro.odes import ODESystem, Trajectory

__all__ = [
    "FK_BR_PARAMS",
    "BCF_EPI_PARAMS",
    "fenton_karma",
    "fenton_karma_hybrid",
    "bueno_cherry_fenton",
    "bcf_hybrid",
    "fenton_karma_mode",
    "bcf_mode",
    "fenton_karma_rest",
    "APFeatures",
    "ap_features",
    "action_potential",
]

# ----------------------------------------------------------------------
# Fenton-Karma (1998), Beeler-Reuter fit (Table 1 of [55])
# ----------------------------------------------------------------------

FK_BR_PARAMS: dict[str, float] = {
    "tau_d": 0.25,      # fast inward (depolarization) time scale
    "tau_r": 33.0,      # slow outward (repolarization)
    "tau_si": 30.0,     # slow inward
    "tau_0": 12.5,      # outward at rest
    "tau_v_plus": 3.33,
    "tau_v1_minus": 1250.0,
    "tau_v2_minus": 19.6,
    "tau_w_plus": 870.0,
    "tau_w_minus": 41.0,
    "u_c": 0.13,        # excitation threshold
    "u_v": 0.04,        # v-gate threshold
    "u_c_si": 0.85,     # slow-inward activation midpoint
    "k_si": 10.0,       # slow-inward activation steepness
}


def _fk_field(p: bool | Expr, q: bool | Expr) -> dict[str, Expr]:
    """FK vector field with the two Heaviside gates supplied either as
    booleans (hybrid modes) or as gate expressions (smooth model)."""
    u, v, w = var("u"), var("v"), var("w")
    tau_d, tau_r = var("tau_d"), var("tau_r")
    tau_si, tau_0 = var("tau_si"), var("tau_0")
    tau_vp = var("tau_v_plus")
    tau_v1m, tau_v2m = var("tau_v1_minus"), var("tau_v2_minus")
    tau_wp, tau_wm = var("tau_w_plus"), var("tau_w_minus")
    u_c, u_c_si, k_si = var("u_c"), var("u_c_si"), var("k_si")

    P: Expr = Const(1.0 if p else 0.0) if isinstance(p, bool) else p
    Q: Expr = Const(1.0 if q else 0.0) if isinstance(q, bool) else q

    j_fi = -(v * P / tau_d) * (1.0 - u) * (u - u_c)
    j_so = (u / tau_0) * (1.0 - P) + P / tau_r
    j_si = -(w / (2.0 * tau_si)) * (1.0 + tanh(k_si * (u - u_c_si)))
    tau_vm = Q * tau_v1m + (1.0 - Q) * tau_v2m
    return {
        "u": -(j_fi + j_so + j_si),
        "v": (1.0 - P) * (1.0 - v) / tau_vm - P * v / tau_vp,
        "w": (1.0 - P) * (1.0 - w) / tau_wm - P * w / tau_wp,
    }


def fenton_karma(
    params: dict[str, float] | None = None, gate_steepness: float = 100.0
) -> ODESystem:
    """Smooth single-mode FK model (sigmoid gates)."""
    u = var("u")
    p_gate = sigmoid(gate_steepness * (u - var("u_c")))
    q_gate = sigmoid(gate_steepness * (u - var("u_v")))
    return ODESystem(
        _fk_field(p_gate, q_gate),
        {**FK_BR_PARAMS, **(params or {})},
        name="fenton_karma",
    )


def fenton_karma_hybrid(
    params: dict[str, float] | None = None,
    initial_mode: str = "excited",
    init: Box | None = None,
) -> HybridAutomaton:
    """FK as a 3-mode hybrid automaton partitioned at u_v < u_c.

    Modes: ``rest`` (u < u_v: p=0, q=0), ``gate`` (u_v <= u < u_c:
    p=0, q=1), ``excited`` (u >= u_c: p=1, q=1).  Pick ``initial_mode``
    consistent with the initial voltage range (``rest`` for
    sub-threshold stimulation studies).
    """
    merged = {**FK_BR_PARAMS, **(params or {})}
    u = var("u")
    u_c, u_v = var("u_c"), var("u_v")
    eps = 1e-6
    return HybridAutomaton(
        variables=["u", "v", "w"],
        modes=[
            Mode("rest", _fk_field(False, False), invariant=(u <= u_v + eps)),
            Mode(
                "gate",
                _fk_field(False, True),
                invariant=(u >= u_v - eps) & (u <= u_c + eps),
            ),
            Mode("excited", _fk_field(True, True), invariant=(u >= u_c - eps)),
        ],
        jumps=[
            Jump("rest", "gate", guard=(u >= u_v)),
            Jump("gate", "excited", guard=(u >= u_c)),
            Jump("excited", "gate", guard=(u <= u_c)),
            Jump("gate", "rest", guard=(u <= u_v)),
        ],
        initial_mode=initial_mode,
        init=init if init is not None else Box.from_bounds(
            {"u": (0.3, 1.0), "v": (0.9, 1.0), "w": (0.9, 1.0)}
        ),
        params=merged,
        name="fenton_karma_hybrid",
    )


def fenton_karma_mode(
    mode: str = "excited", params: dict[str, float] | None = None
) -> ODESystem:
    """The continuous dynamics of one FK hybrid mode as a plain ODE.

    A JSON-able zoo entry (``{"builtin": "fenton_karma_mode", "args":
    {"mode": "excited"}}``) for barrier-style studies that analyze a
    single gating regime, e.g. the spike-and-dome falsification of [37].
    """
    return fenton_karma_hybrid(params).mode_system(mode)


def fenton_karma_rest(
    u_max: float = 0.03, params: dict[str, float] | None = None
) -> HybridAutomaton:
    """FK hybrid automaton prepared for sub-threshold stimulation study.

    Starts in the ``rest`` mode with the stimulus encoded as the initial
    voltage interval ``u in [0, u_max]`` (gates at rest, v = w = 1) --
    the robustness setting of paper Section IV-C.
    """
    return fenton_karma_hybrid(
        params,
        initial_mode="rest",
        init=Box.from_bounds(
            {"u": (0.0, float(u_max)), "v": (1.0, 1.0), "w": (1.0, 1.0)}
        ),
    )


# ----------------------------------------------------------------------
# Bueno-Cherry-Fenton minimal model (2008), epicardial parameter set
# ----------------------------------------------------------------------

BCF_EPI_PARAMS: dict[str, float] = {
    "u_o": 0.0,
    "u_u": 1.55,
    "theta_v": 0.3,
    "theta_w": 0.13,
    "theta_vm": 0.006,
    "theta_o": 0.006,
    "tau_v1m": 60.0,
    "tau_v2m": 1150.0,
    "tau_vp": 1.4506,
    "tau_w1m": 60.0,
    "tau_w2m": 15.0,
    "k_wm": 65.0,
    "u_wm": 0.03,
    "tau_wp": 200.0,
    "tau_fi": 0.11,
    "tau_o1": 400.0,
    "tau_o2": 6.0,
    "tau_so1": 30.0181,
    "tau_so2": 0.9957,
    "k_so": 2.0458,
    "u_so": 0.65,
    "tau_s1": 2.7342,
    "tau_s2": 16.0,
    "k_s": 2.0994,
    "u_s": 0.9087,
    "tau_si": 1.8875,
    "tau_winf": 0.07,
    "w_infstar": 0.94,
}


def _bcf_field(
    h_v: bool | Expr, h_w: bool | Expr, h_o: bool | Expr
) -> dict[str, Expr]:
    """BCF vector field; ``h_v = H(u-theta_v)``, ``h_w = H(u-theta_w)``,
    ``h_o = H(u-theta_o) = H(u-theta_vm)`` (equal thresholds in EPI)."""
    u, v, w, s = var("u"), var("v"), var("w"), var("s")

    def gate(g: bool | Expr) -> Expr:
        return Const(1.0 if g else 0.0) if isinstance(g, bool) else g

    Hv, Hw, Ho = gate(h_v), gate(h_w), gate(h_o)

    u_oP, u_u = var("u_o"), var("u_u")
    theta_v = var("theta_v")
    tau_v1m, tau_v2m, tau_vp = var("tau_v1m"), var("tau_v2m"), var("tau_vp")
    tau_w1m, tau_w2m = var("tau_w1m"), var("tau_w2m")
    k_wm, u_wm, tau_wp = var("k_wm"), var("u_wm"), var("tau_wp")
    tau_fi = var("tau_fi")
    tau_o1, tau_o2 = var("tau_o1"), var("tau_o2")
    tau_so1, tau_so2 = var("tau_so1"), var("tau_so2")
    k_so, u_so = var("k_so"), var("u_so")
    tau_s1, tau_s2, k_s, u_s = var("tau_s1"), var("tau_s2"), var("k_s"), var("u_s")
    tau_si, tau_winf, w_infstar = var("tau_si"), var("tau_winf"), var("w_infstar")

    tau_o = (1.0 - Ho) * tau_o1 + Ho * tau_o2
    tau_so = tau_so1 + (tau_so2 - tau_so1) * (1.0 + tanh(k_so * (u - u_so))) / 2.0
    tau_s = (1.0 - Hw) * tau_s1 + Hw * tau_s2
    tau_vm = (1.0 - Ho) * tau_v1m + Ho * tau_v2m
    tau_wm = tau_w1m + (tau_w2m - tau_w1m) * (1.0 + tanh(k_wm * (u - u_wm))) / 2.0
    v_inf = 1.0 - Ho  # u < theta_vm  => 1 else 0 (theta_vm == theta_o)
    w_inf = (1.0 - Ho) * (1.0 - u / tau_winf) + Ho * w_infstar

    j_fi = -v * Hv * (u - theta_v) * (u_u - u) / tau_fi
    j_so = (u - u_oP) * (1.0 - Hw) / tau_o + Hw / tau_so
    j_si = -Hw * w * s / tau_si

    return {
        "u": -(j_fi + j_so + j_si),
        "v": (1.0 - Hv) * (v_inf - v) / tau_vm - Hv * v / tau_vp,
        "w": (1.0 - Hw) * (w_inf - w) / tau_wm - Hw * w / tau_wp,
        "s": ((1.0 + tanh(k_s * (u - u_s))) / 2.0 - s) / tau_s,
    }


def bueno_cherry_fenton(
    params: dict[str, float] | None = None, gate_steepness: float = 200.0
) -> ODESystem:
    """Smooth single-mode BCF minimal model (epicardial defaults)."""
    u = var("u")
    h_v = sigmoid(gate_steepness * (u - var("theta_v")))
    h_w = sigmoid(gate_steepness * (u - var("theta_w")))
    h_o = sigmoid(gate_steepness * (u - var("theta_o")))
    return ODESystem(
        _bcf_field(h_v, h_w, h_o),
        {**BCF_EPI_PARAMS, **(params or {})},
        name="bueno_cherry_fenton",
    )


def bcf_hybrid(
    params: dict[str, float] | None = None,
    initial_mode: str = "m4",
    init: Box | None = None,
) -> HybridAutomaton:
    """BCF as a 4-mode hybrid automaton partitioned at the thresholds
    ``theta_o = theta_vm < theta_w < theta_v`` (as in [37]).

    Modes: ``m1`` (u < theta_o), ``m2`` (theta_o <= u < theta_w),
    ``m3`` (theta_w <= u < theta_v), ``m4`` (u >= theta_v).
    """
    merged = {**BCF_EPI_PARAMS, **(params or {})}
    u = var("u")
    th_o, th_w, th_v = var("theta_o"), var("theta_w"), var("theta_v")
    eps = 1e-6
    return HybridAutomaton(
        variables=["u", "v", "w", "s"],
        modes=[
            Mode("m1", _bcf_field(False, False, False), invariant=(u <= th_o + eps)),
            Mode(
                "m2",
                _bcf_field(False, False, True),
                invariant=(u >= th_o - eps) & (u <= th_w + eps),
            ),
            Mode(
                "m3",
                _bcf_field(False, True, True),
                invariant=(u >= th_w - eps) & (u <= th_v + eps),
            ),
            Mode("m4", _bcf_field(True, True, True), invariant=(u >= th_v - eps)),
        ],
        jumps=[
            Jump("m1", "m2", guard=(u >= th_o)),
            Jump("m2", "m3", guard=(u >= th_w)),
            Jump("m3", "m4", guard=(u >= th_v)),
            Jump("m4", "m3", guard=(u <= th_v)),
            Jump("m3", "m2", guard=(u <= th_w)),
            Jump("m2", "m1", guard=(u <= th_o)),
        ],
        initial_mode=initial_mode,
        init=init if init is not None else Box.from_bounds(
            {"u": (0.3, 1.0), "v": (0.9, 1.0), "w": (0.9, 1.0), "s": (0.0, 0.1)}
        ),
        params=merged,
        name="bcf_hybrid",
    )


def bcf_mode(mode: str = "m4", params: dict[str, float] | None = None) -> ODESystem:
    """The continuous dynamics of one BCF hybrid mode as a plain ODE.

    The ``m4`` (fully excited) mode is the dome window of the
    spike-and-dome comparison in [37]; exposing it as a JSON-able zoo
    entry lets declarative scenarios run barrier queries against it.
    """
    return bcf_hybrid(params).mode_system(mode)


# ----------------------------------------------------------------------
# Action-potential feature extraction
# ----------------------------------------------------------------------


@dataclass
class APFeatures:
    """Morphological features of a single action potential."""

    peak: float
    apd90: float | None           # duration above 10% of peak
    repolarized: bool             # returned below 10% of peak by the end
    has_dome: bool                # secondary rise after the notch
    notch_depth: float | None     # peak-to-notch drop when a dome exists
    dome_peak: float | None


def ap_features(
    traj: Trajectory,
    voltage: str = "u",
    dome_min_rise: float = 0.02,
    dome_window: tuple[float, float] = (0.25, 0.98),
) -> APFeatures:
    """Extract AP features from a stimulated single-cell trajectory.

    A "dome" is a local minimum (the notch) followed by a rise of at
    least ``dome_min_rise``, with the notch voltage inside
    ``dome_window`` (fractions of peak) -- the epicardial
    spike-and-dome morphology of paper Section IV-A.
    """
    us = traj.column(voltage)
    ts = traj.times
    peak_idx = int(np.argmax(us))
    peak = float(us[peak_idx])
    if peak <= 0.0:
        return APFeatures(peak, None, True, False, None, None)

    thr = 0.1 * peak
    below = np.where(us[peak_idx:] < thr)[0]
    repolarized = below.size > 0
    apd90 = None
    if repolarized:
        # first crossing below threshold after the peak
        end_idx = peak_idx + int(below[0])
        # first crossing above threshold (before or at peak)
        above = np.where(us[: peak_idx + 1] >= thr)[0]
        start_idx = int(above[0]) if above.size else peak_idx
        apd90 = float(ts[end_idx] - ts[start_idx])

    # dome: local min after peak followed by a sufficient rise
    has_dome = False
    notch_depth = None
    dome_peak = None
    lo_frac, hi_frac = dome_window
    segment = us[peak_idx:]
    for i in range(1, len(segment) - 1):
        if segment[i] < thr:
            break  # fully repolarized; no dome possible afterwards
        if segment[i] <= segment[i - 1] and segment[i] < segment[i + 1]:
            notch = float(segment[i])
            if not (lo_frac * peak <= notch <= hi_frac * peak):
                continue
            rise = float(np.max(segment[i + 1:]) - notch)
            if rise >= dome_min_rise:
                has_dome = True
                notch_depth = peak - notch
                dome_peak = notch + rise
                break
    return APFeatures(peak, apd90, repolarized, has_dome, notch_depth, dome_peak)


def action_potential(
    system: ODESystem,
    u0: float = 0.4,
    t_final: float = 500.0,
    params: dict[str, float] | None = None,
    rtol: float = 1e-6,
    max_step: float = 1.0,
) -> Trajectory:
    """Simulate a stimulated action potential.

    The stimulus is modeled as an elevated initial voltage ``u0`` (the
    encoding used in [37]); gates start from rest (v = w = 1, s = 0).
    """
    from repro.odes import rk45

    x0 = {"u": u0, "v": 1.0, "w": 1.0}
    if "s" in system.state_names:
        x0["s"] = 0.0
    return rk45(system, x0, (0.0, t_final), params=params, rtol=rtol, max_step=max_step)
