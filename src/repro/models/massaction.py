"""Mass-action signaling models for Lyapunov analysis.

Paper Section IV-C cites [60]: Lyapunov-enabled analysis of mass-action
kinetic models, with T-cell kinetic proofreading and ERK signaling as
the canonical examples.  We implement both as symbolic ODE systems and
compute their (unique, positive) equilibria numerically so the
Lyapunov analyzer can be pointed at them directly.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import fsolve

from repro.expr import var
from repro.odes import ODESystem

__all__ = [
    "kinetic_proofreading",
    "kinetic_proofreading_ode",
    "erk_cascade",
    "erk_cascade_ode",
    "receptor_ligand",
    "find_equilibrium",
]


def find_equilibrium(
    system: ODESystem,
    guess: dict[str, float],
    tol: float = 1e-12,
) -> dict[str, float]:
    """Solve ``f(x) = 0`` numerically from ``guess`` (scipy fsolve),
    refined so it passes the analyzer's equilibrium check."""
    names = system.state_names
    f = system.rhs()
    p = dict(system.params)

    def fun(vals: np.ndarray) -> np.ndarray:
        return f(0.0, vals, p)

    x0 = np.array([float(guess[n]) for n in names])
    sol, info, ier, msg = fsolve(fun, x0, full_output=True, xtol=tol)
    if ier != 1:
        raise RuntimeError(f"equilibrium search failed: {msg}")
    return dict(zip(names, map(float, sol)))


def receptor_ligand(
    kon: float = 1.0, koff: float = 0.5, r_total: float = 2.0, l_total: float = 3.0
) -> tuple[ODESystem, dict[str, float]]:
    """Reversible binding ``R + L <-> C`` with conservation laws reduced
    out: one state ``c`` with ``R = RT - c``, ``L = LT - c``.

    Returns ``(system, equilibrium)``.  The equilibrium is the unique
    root of a quadratic in ``(0, min(RT, LT))`` and the system is
    globally stable toward it on that interval.
    """
    c = var("c")
    sys_ = ODESystem(
        {"c": var("kon") * (var("RT") - c) * (var("LT") - c) - var("koff") * c},
        {"kon": kon, "koff": koff, "RT": r_total, "LT": l_total},
        name="receptor_ligand",
    )
    eq = find_equilibrium(sys_, {"c": min(r_total, l_total) / 2.0})
    return sys_, eq


def kinetic_proofreading(
    n_steps: int = 3,
    kon: float = 1.0,
    koff: float = 0.3,
    kp: float = 0.5,
    r_total: float = 1.0,
    l_total: float = 2.0,
) -> tuple[ODESystem, dict[str, float]]:
    """McKeithan's T-cell kinetic proofreading chain.

    Ligand L binds receptor R to form C0, which is progressively
    modified ``C0 -> C1 -> ... -> C_{n-1}`` at rate ``kp``; every
    complex can dissociate at ``koff`` back to R + L.  Conservation of
    receptor and ligand eliminates R and L::

        R = RT - sum(Ci),   L = LT - sum(Ci)

    This is the classic example of [60]: the network is complex-balanced
    and globally asymptotically stable, so a Lyapunov certificate must
    exist; we search for a quadratic one near the equilibrium.
    """
    if n_steps < 1:
        raise ValueError("n_steps must be >= 1")
    names = [f"c{i}" for i in range(n_steps)]
    total = None
    for n in names:
        total = var(n) if total is None else total + var(n)
    free_r = var("RT") - total
    free_l = var("LT") - total
    derivs = {}
    for i, n in enumerate(names):
        expr = -var("koff") * var(n)
        if i == 0:
            expr = expr + var("kon") * free_r * free_l
        else:
            expr = expr + var("kp") * var(names[i - 1])
        if i < n_steps - 1:
            expr = expr - var("kp") * var(n)
        derivs[n] = expr
    sys_ = ODESystem(
        derivs,
        {"kon": kon, "koff": koff, "kp": kp, "RT": r_total, "LT": l_total},
        name=f"kinetic_proofreading_{n_steps}",
    )
    guess = {n: 0.1 for n in names}
    eq = find_equilibrium(sys_, guess)
    return sys_, eq


def kinetic_proofreading_ode(
    n_steps: int = 3,
    kon: float = 1.0,
    koff: float = 0.3,
    kp: float = 0.5,
    r_total: float = 1.0,
    l_total: float = 2.0,
) -> ODESystem:
    """The kinetic-proofreading system alone (no equilibrium tuple).

    A JSON-able model-zoo entry for declarative scenarios: builtin
    factories must return a bare system, so this wraps
    :func:`kinetic_proofreading` and drops the computed equilibrium
    (catalog entries bake the equilibrium into the query instead).
    """
    return kinetic_proofreading(n_steps, kon, koff, kp, r_total, l_total)[0]


def erk_cascade(
    k1: float = 0.8,
    k2: float = 0.6,
    d1: float = 0.4,
    d2: float = 0.5,
    s: float = 0.5,
    km: float = 1.0,
) -> tuple[ODESystem, dict[str, float]]:
    """A two-tier ERK activation cascade with Michaelis-Menten
    (de)activation.

    ``m`` (active MEK) is produced from the stimulus ``s`` and decays;
    ``e`` (active ERK) is activated by ``m`` with saturating kinetics
    and deactivated linearly::

        dm/dt = k1 * s - d1 * m
        de/dt = k2 * m * (1 - e)/(km + (1 - e))^0 ... simplified:
        de/dt = k2 * m * (1 - e) - d2 * e

    (activation proportional to inactive fraction ``1 - e``).  The
    system has a unique stable equilibrium in the unit box.
    """
    m, e = var("m"), var("e")
    sys_ = ODESystem(
        {
            "m": var("k1") * var("s") - var("d1") * m,
            "e": var("k2") * m * (1.0 - e) - var("d2") * e,
        },
        {"k1": k1, "k2": k2, "d1": d1, "d2": d2, "s": s, "km": km},
        name="erk_cascade",
    )
    eq = find_equilibrium(sys_, {"m": 0.5, "e": 0.5})
    return sys_, eq


def erk_cascade_ode(
    k1: float = 0.8,
    k2: float = 0.6,
    d1: float = 0.4,
    d2: float = 0.5,
    s: float = 0.5,
    km: float = 1.0,
) -> ODESystem:
    """The ERK-cascade system alone (no equilibrium tuple).

    The JSON-able counterpart of :func:`erk_cascade` for declarative
    scenarios, mirroring :func:`kinetic_proofreading_ode`.
    """
    return erk_cascade(k1, k2, d1, d2, s, km)[0]
