"""Standard small models used in tests, examples and benchmarks."""

from __future__ import annotations

from repro.expr import var
from repro.hybrid import HybridAutomaton, Jump, Mode
from repro.intervals import Box
from repro.logic import And
from repro.odes import ODESystem

__all__ = [
    "decay",
    "logistic",
    "lotka_volterra",
    "sir",
    "damped_oscillator",
    "van_der_pol",
    "thermostat",
    "bouncing_ball",
]


def decay(k: float = 1.0) -> ODESystem:
    """Exponential decay ``dx/dt = -k x`` (the smallest calibratable
    model; used by the pipeline scenarios and benchmarks)."""
    return ODESystem({"x": -var("k") * var("x")}, {"k": k}, name="decay")


def logistic(r: float = 1.0, K: float = 10.0) -> ODESystem:
    """Logistic growth ``dx/dt = r x (1 - x/K)``."""
    x = var("x")
    return ODESystem(
        {"x": var("r") * x * (1.0 - x / var("K"))},
        {"r": r, "K": K},
        name="logistic",
    )


def lotka_volterra(
    alpha: float = 1.0, beta: float = 0.5, gamma: float = 1.0, delta: float = 0.25
) -> ODESystem:
    """Predator-prey: ``x' = a x - b x y``, ``y' = -c y + d x y``."""
    x, y = var("x"), var("y")
    return ODESystem(
        {
            "x": var("alpha") * x - var("beta") * x * y,
            "y": -var("gamma") * y + var("delta") * x * y,
        },
        {"alpha": alpha, "beta": beta, "gamma": gamma, "delta": delta},
        name="lotka_volterra",
    )


def sir(beta: float = 0.3, gamma: float = 0.1) -> ODESystem:
    """SIR epidemic model with normalized population."""
    s, i = var("s"), var("i")
    return ODESystem(
        {
            "s": -var("beta") * s * i,
            "i": var("beta") * s * i - var("gamma") * i,
            "r": var("gamma") * i,
        },
        {"beta": beta, "gamma": gamma},
        name="sir",
    )


def damped_oscillator(k: float = 1.0, c: float = 1.0) -> ODESystem:
    """``x'' + c x' + k x = 0`` as a first-order system."""
    x, v = var("x"), var("v")
    return ODESystem(
        {"x": v, "v": -var("k") * x - var("c") * v},
        {"k": k, "c": c},
        name="damped_oscillator",
    )


def van_der_pol(mu: float = 1.0) -> ODESystem:
    """Van der Pol oscillator (stable limit cycle)."""
    x, v = var("x"), var("v")
    return ODESystem(
        {"x": v, "v": var("mu") * (1.0 - x * x) * v - x},
        {"mu": mu},
        name="van_der_pol",
    )


def thermostat(
    theta_on: float = 18.0, theta_off: float = 22.0, heat: float = 30.0
) -> HybridAutomaton:
    """Classic two-mode thermostat with hysteresis thresholds as
    parameters (useful for threshold-synthesis demos)."""
    x = var("x")
    t_on, t_off = var("theta_on"), var("theta_off")
    return HybridAutomaton(
        variables=["x"],
        modes=[
            Mode("off", {"x": -x}),
            Mode("on", {"x": var("heat") - x}),
        ],
        jumps=[
            Jump("off", "on", guard=(x <= t_on)),
            Jump("on", "off", guard=(x >= t_off)),
        ],
        initial_mode="off",
        init=Box.from_bounds({"x": (20.0, 21.0)}),
        params={"theta_on": theta_on, "theta_off": theta_off, "heat": heat},
        name="thermostat",
    )


def bouncing_ball(c: float = 0.8, g: float = 9.81, h0: float = 1.0) -> HybridAutomaton:
    """Bouncing ball with restitution coefficient ``c``."""
    x, v = var("x"), var("v")
    return HybridAutomaton(
        variables=["x", "v"],
        modes=[Mode("fall", {"x": v, "v": 0.0 * x - var("g")}, invariant=(x >= -1e-6))],
        jumps=[
            Jump(
                "fall",
                "fall",
                guard=And(x <= 0.0, v <= 0.0),
                reset={"v": -var("c") * v, "x": 1e-9},
            )
        ],
        initial_mode="fall",
        init=Box.from_bounds({"x": (h0, h0), "v": (0.0, 0.0)}),
        params={"c": c, "g": g},
        name="bouncing_ball",
    )
