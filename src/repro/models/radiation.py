"""Multi-mode model of irradiation-induced cell-death signaling (Fig. 1/3).

The paper's radiation-disease case study (Section IV-B, Fig. 3 and
[22]-[24]): after total-body irradiation (TBI), several interconnected
cell-death pathways race toward commitment; radiation mitigators
inhibit individual pathways, and the therapy-design problem is to pick
*which* drug to deliver *when* -- encoded as synthesizing the jump
thresholds of a multi-mode hybrid automaton.

Continuous state (one "signature" species per pathway of Fig. 1, plus
the initiating damage):

* ``dmg``  -- radiation damage signal (drives all pathways; decays),
* ``clox`` -- oxidized cardiolipin (apoptosis signature; inhibited by
  JP4-039 in mode A),
* ``rip3`` -- phosphorylated RIP3/MLKL (necroptosis; necrostatin-1,
  mode B),
* ``peox`` -- oxidized PE lipids (ferroptosis; baicalein, mode C),
* ``il``   -- IL-1beta (pyroptosis; MCC950, mode D),
* ``nad``  -- NAD+ level, depleted by PARP1 (parthanatos; XJB-veliparib
  restores it, mode E).

Modes: ``live`` (mode 0, no drug), ``drug_X`` (modes A-E, live cell
under inhibitor X), ``death`` (mode 1, absorbing "point of no return").
Death fires when any signature crosses its lethal threshold (or NAD
collapses).  Treatment jumps ``live -> drug_X`` are guarded by the
signature exceeding a *decision threshold* ``theta_X`` -- the
parameters synthesized in the paper's Fig. 3 walkthrough; recovery
jumps return to ``live`` when the treated signature falls below the
recovery level.

The quantitative dynamics are synthetic (mass-action-style production/
clearance with cross-pathway couplings from Fig. 1: CLox promotes RIP3
signaling, RIP3 promotes lipid peroxidation, PARP activity consumes
NAD); the *structure* -- which pathway each drug blocks, and the
signature-guarded mode switching -- follows the paper.  See DESIGN.md,
substitution table.
"""

from __future__ import annotations

from repro.expr import var
from repro.hybrid import HybridAutomaton, Jump, Mode
from repro.intervals import Box
from repro.logic import And, Or

__all__ = ["TBI_DEFAULT_PARAMS", "DRUG_MODES", "tbi_model"]

TBI_DEFAULT_PARAMS: dict[str, float] = {
    # damage decay
    "lam": 0.08,
    # production rates driven by damage
    "k_clox": 0.40,
    "k_rip3": 0.25,
    "k_peox": 0.20,
    "k_il": 0.15,
    "k_parp": 0.30,   # NAD consumption per damage+PARP activity
    # clearance rates
    "d_clox": 0.10,
    "d_rip3": 0.12,
    "d_peox": 0.10,
    "d_il": 0.15,
    "k_nad": 0.05,    # NAD regeneration toward 1.0
    # cross-pathway couplings (Fig. 1 interconnectivity)
    "c_clox_rip3": 0.10,   # CLox release promotes RIPK3 signaling
    "c_rip3_peox": 0.08,   # RIPK3/PEBP1 promotes lipid peroxidation
    # drug inhibition strengths (fraction of production blocked)
    "inh_A": 0.95,  # JP4-039 vs CLox
    "inh_B": 0.95,  # necrostatin-1 vs RIP3
    "inh_C": 0.95,  # baicalein vs PEox
    "inh_D": 0.95,  # MCC950 vs IL-1beta
    "inh_E": 0.95,  # XJB-veliparib vs PARP (NAD drain)
    # lethal thresholds (signature level committing the cell to death)
    "lethal": 1.0,
    "nad_floor": 0.2,
    # treatment decision thresholds (synthesis targets)
    "theta_A": 0.5,
    "theta_B": 0.5,
    "theta_C": 0.5,
    "theta_D": 0.5,
    "theta_E": 0.5,
    # recovery level: signature below this returns the cell to mode 0
    "recover": 0.3,
    # hysteresis margin for drug-to-drug switching (prevents chatter)
    "switch_margin": 0.15,
}

#: drug mode name -> (inhibited signature variable, inhibition parameter,
#:                    decision threshold parameter)
DRUG_MODES: dict[str, tuple[str, str, str]] = {
    "drug_A": ("clox", "inh_A", "theta_A"),
    "drug_B": ("rip3", "inh_B", "theta_B"),
    "drug_C": ("peox", "inh_C", "theta_C"),
    "drug_D": ("il", "inh_D", "theta_D"),
    "drug_E": ("nad", "inh_E", "theta_E"),
}

_SIGNATURES = ("clox", "rip3", "peox", "il")


def _field(inhibited: str | None) -> dict:
    """Vector field of a live mode; ``inhibited`` names the drug mode's
    target pathway (None for mode 0)."""
    dmg = var("dmg")
    clox, rip3, peox, il, nad = (
        var("clox"), var("rip3"), var("peox"), var("il"), var("nad"),
    )

    def prod_factor(mode_key: str) -> object:
        if inhibited == mode_key:
            inh = {
                "clox": "inh_A", "rip3": "inh_B", "peox": "inh_C",
                "il": "inh_D", "nad": "inh_E",
            }[mode_key]
            return 1.0 - var(inh)
        return 1.0

    d_clox = var("k_clox") * dmg * prod_factor("clox") - var("d_clox") * clox
    d_rip3 = (
        (var("k_rip3") * dmg + var("c_clox_rip3") * clox) * prod_factor("rip3")
        - var("d_rip3") * rip3
    )
    d_peox = (
        (var("k_peox") * dmg + var("c_rip3_peox") * rip3) * prod_factor("peox")
        - var("d_peox") * peox
    )
    d_il = var("k_il") * dmg * prod_factor("il") - var("d_il") * il
    d_nad = var("k_nad") * (1.0 - nad) - var("k_parp") * dmg * nad * prod_factor("nad")
    return {
        "dmg": -var("lam") * dmg,
        "clox": d_clox,
        "rip3": d_rip3,
        "peox": d_peox,
        "il": d_il,
        "nad": d_nad,
    }


def _frozen_field() -> dict:
    """Death mode: absorbing, all derivatives zero."""
    return {n: 0.0 * var(n) for n in ("dmg", "clox", "rip3", "peox", "il", "nad")}


def tbi_model(
    params: dict[str, float] | None = None,
    dose: float = 1.0,
    drugs: tuple[str, ...] = ("drug_A", "drug_B", "drug_C", "drug_D", "drug_E"),
) -> HybridAutomaton:
    """The TBI multi-mode therapy automaton of Fig. 3.

    Parameters
    ----------
    dose:
        Initial radiation damage level (mode 0 starts 24h post-TBI).
    drugs:
        Which drug modes (A-E) are available; restricting the set
        models limited drug access and shrinks the path search space.

    Structure (Fig. 3): mode 0 = live cell, no treatment; modes A-E =
    live under one inhibitor; mode 1 = death (absorbing).  Each
    ``live -> drug_X`` jump is guarded by the pathway signature
    exceeding ``theta_X``; returning to mode 0 requires the signature
    to recede below ``recover``; any live mode jumps to ``death`` when
    a lethal threshold is crossed.
    """
    p = {**TBI_DEFAULT_PARAMS, **(params or {})}
    unknown = [d for d in drugs if d not in DRUG_MODES]
    if unknown:
        raise ValueError(f"unknown drug modes: {unknown}")

    lethal = var("lethal")
    nad_floor = var("nad_floor")
    death_guard = Or(
        *[var(s) >= lethal for s in _SIGNATURES],
        nad_floor - var("nad") >= 0,
    )
    # Live modes carry the complementary invariant, so crossing a lethal
    # threshold *forces* the death transition (Fig. 3's "point of no
    # return" is not optional) -- also under BMC's may-jump semantics.
    eps = 1e-6
    alive_inv = And(
        *[var(s) <= lethal + eps for s in _SIGNATURES],
        var("nad") >= nad_floor - eps,
    )

    modes = [Mode("live", _field(None), invariant=alive_inv),
             Mode("death", _frozen_field())]
    jumps = [Jump("live", "death", guard=death_guard)]

    def urgency(target: str):
        """Pathway urgency: signature level, or NAD deficit for mode E."""
        return (1.0 - var("nad")) if target == "nad" else var(target)

    def decision(target: str, theta: str):
        if target == "nad":
            return var(theta) - var("nad") >= 0  # NAD fallen below theta
        return var(target) - var(theta) >= 0

    for drug in drugs:
        target, _inh, theta = DRUG_MODES[drug]
        modes.append(Mode(drug, _field(target), invariant=alive_inv))
        if target == "nad":
            recovery = var("nad") - 0.9 >= 0  # NAD restored
        else:
            recovery = var("recover") - var(target) >= 0
        jumps.append(Jump("live", drug, guard=decision(target, theta)))
        jumps.append(Jump(drug, "live", guard=recovery))
        jumps.append(Jump(drug, "death", guard=death_guard))
        # combination therapy: switch to another drug only when its
        # pathway is both past its decision threshold and *more urgent*
        # than the one currently treated (prevents threshold chatter)
        for other in drugs:
            if other == drug:
                continue
            o_target, _oi, o_theta = DRUG_MODES[other]
            o_guard = And(
                decision(o_target, o_theta),
                urgency(o_target) - urgency(target) - var("switch_margin") >= 0,
            )
            jumps.append(Jump(drug, other, guard=o_guard))

    init = {
        "dmg": (dose, dose),
        "clox": (0.0, 0.0),
        "rip3": (0.0, 0.0),
        "peox": (0.0, 0.0),
        "il": (0.0, 0.0),
        "nad": (1.0, 1.0),
    }
    return HybridAutomaton(
        variables=["dmg", "clox", "rip3", "peox", "il", "nad"],
        modes=modes,
        jumps=jumps,
        initial_mode="live",
        init=Box.from_bounds(init),
        params=p,
        name="tbi",
    )
