"""End-to-end throughput of the scenario corpus pipeline.

Times the three corpus stages on real workloads:

* **generate** — procedurally build every family at its default size
  (pure Python, no solving);
* **ingest** — bulk-import the committed SBML file corpus
  (``src/repro/scenarios/data/sbml/``) including bounds inference and
  template instantiation;
* **solve** — push a seed-deterministic slice of registered corpus
  entries through one engine batch and report entries/sec.

CI runs this in ``--quick`` mode and uploads the JSON as the
``BENCH_corpus_throughput.json`` artifact::

    python benchmarks/corpus_throughput.py --quick --out BENCH_corpus_throughput.json
"""

from __future__ import annotations

import argparse
import json
import time


def corpus_slice(per_family: int) -> list:
    """The first N sorted entries of every registered family."""
    from repro.scenarios import corpus_families, find_scenarios

    specs = []
    for family in sorted(corpus_families()):
        members = sorted(find_scenarios(family=family), key=lambda s: s.name)
        specs.extend(entry.spec() for entry in members[:per_family])
    return specs


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="solve a 2-per-family slice (CI smoke mode)")
    parser.add_argument("--per-family", type=int, default=None,
                        help="solved entries per family (default 6, quick: 2)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default="BENCH_corpus_throughput.json")
    args = parser.parse_args(argv)

    from repro.api import Engine
    from repro.scenarios import corpus_families, generate_corpus
    from repro.scenarios.corpus import SBML_DIR
    from repro.scenarios.ingest import ingest_dir

    t0 = time.perf_counter()
    generated = generate_corpus()
    generate_s = time.perf_counter() - t0

    t0 = time.perf_counter()
    ingested = ingest_dir(SBML_DIR)
    ingest_s = time.perf_counter() - t0

    per_family = args.per_family or (2 if args.quick else 6)
    specs = corpus_slice(per_family)
    with Engine(workers=args.workers, seed=0) as engine:
        t0 = time.perf_counter()
        reports = engine.run_batch(specs)
        solve_s = time.perf_counter() - t0

    verdicts: dict[str, int] = {}
    for report in reports:
        verdicts[report.status.value] = verdicts.get(report.status.value, 0) + 1

    result = {
        "benchmark": "corpus_throughput",
        "mode": "quick" if args.quick else "full",
        "families": corpus_families(),
        "generated_entries": len(generated),
        "generate_seconds": round(generate_s, 4),
        "generate_entries_per_s": round(len(generated) / generate_s, 1),
        "ingested_entries": len(ingested.entries),
        "ingested_files": ingested.files,
        "ingest_skipped": len(ingested.skipped),
        "ingest_seconds": round(ingest_s, 4),
        "ingest_entries_per_s": round(len(ingested.entries) / ingest_s, 1),
        "solved_entries": len(specs),
        "solve_seconds": round(solve_s, 4),
        "solve_entries_per_s": round(len(specs) / solve_s, 3),
        "verdicts": dict(sorted(verdicts.items())),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    solved_ok = all(r.status.value != "error" for r in reports)
    if not (generated and ingested.entries and solved_ok):
        print("FAIL: corpus pipeline produced errors or no entries")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
