"""E7: Lyapunov stability analysis via delta-decisions (Sec. IV-C).

"Our delta-decision procedures enable the Lyapunov stable analysis for
systems with non-polynomial nonlinearity ... (i) given a template
function, we can synthesize a Lyapunov function by solving
exists-forall formulas."

Reproduction: CEGIS synthesis + independent certification for the
kinetic-proofreading and ERK mass-action networks [60], and the
counterexample behavior on an invalid candidate.
"""

from repro.expr import var, variables
from repro.intervals import Box
from repro.lyapunov import LyapunovAnalyzer, quadratic_template
from repro.models import erk_cascade, kinetic_proofreading
from repro.odes import ODESystem
from repro.solver import Status

x, v = variables("x v")


def _analyzer_for(system, equilibrium, radius):
    region = Box.from_bounds(
        {k: (max(1e-6, val - radius), val + radius) for k, val in equilibrium.items()}
    )
    return LyapunovAnalyzer(
        system, region, equilibrium, exclusion_radius=0.02,
        eps_v=1e-3, eps_dv=1e-5,
    )


def test_kinetic_proofreading_synthesis(once):
    system, eq = kinetic_proofreading(n_steps=2)
    analyzer = _analyzer_for(system, eq, 0.15)
    res = once(analyzer.synthesize, seed=1)
    assert res.status is Status.DELTA_SAT
    # independent certification of the synthesized certificate
    assert analyzer.certify(res.V).status is Status.DELTA_SAT


def test_erk_cascade_synthesis(once):
    system, eq = erk_cascade()
    analyzer = _analyzer_for(system, eq, 0.2)
    res = once(analyzer.synthesize, seed=1)
    assert res.status is Status.DELTA_SAT
    assert analyzer.certify(res.V).status is Status.DELTA_SAT


def test_damped_oscillator_cross_term(once):
    """The energy candidate fails the robust conditions; CEGIS finds a
    cross-term certificate."""
    system = ODESystem({"x": v, "v": -x - v})
    region = Box.from_bounds({"x": (-1, 1), "v": (-1, 1)})
    analyzer = LyapunovAnalyzer(system, region, eps_dv=1e-2)

    energy_verdict = analyzer.certify(x * x + v * v)
    assert energy_verdict.status is Status.UNSAT
    assert energy_verdict.counterexample is not None

    res = once(analyzer.synthesize, template=quadratic_template(["x", "v"]), seed=3)
    assert res.status is Status.DELTA_SAT


def test_region_of_attraction(once):
    """Verified sublevel estimation for a known certificate."""
    system = ODESystem({"x": -x, "v": -2.0 * v})
    analyzer = LyapunovAnalyzer(
        system, Box.from_bounds({"x": (-1, 1), "v": (-1, 1)})
    )
    V = x * x + v * v
    roa = once(analyzer.region_of_attraction, V, levels=8)
    assert 0.3 < roa <= 1.0
