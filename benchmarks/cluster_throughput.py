"""Cluster-backend ICP throughput and single-flight dedup on the FK model.

Runs the ``cardiac-fk-dome`` barrier falsification at benchmark
resolution (same grind as ``shard_throughput.py``: the dome window
widened so the paving exhausts its whole box budget) three times --
once in-process (``shards=2`` on the thread backend, the reference),
once through a live :class:`repro.cluster.ClusterBackend` with one
worker subprocess, and once with two -- and reports boxes/sec for
each plus the 2-worker speedup over 1 worker.  All three runs must
return identical verdicts (the epoch driver's conformance contract
holds across backends, so the cluster pool inherits it).

A second section measures single-flight dedup: eight identical
submissions race into an ``Engine(dedup=True)`` and the dedup counters
must show one leader doing the work for all eight.

CI runs this in ``--quick`` mode and uploads the JSON as the
``BENCH_cluster_throughput.json`` artifact::

    python benchmarks/cluster_throughput.py --quick --out BENCH_cluster_throughput.json

The >= 1.3x two-worker speedup floor is enforced in full mode on
machines with at least 2 CPUs; the 7/8 dedup hit ratio is enforced in
full mode unconditionally (followers only need the leader to still be
in flight, which a full-budget paving guarantees).
"""

from __future__ import annotations

import argparse
import json
import os
import time

#: Two-worker speedup floor over the one-worker pool, enforced in full mode.
SPEEDUP_FLOOR = 1.3

#: Identical concurrent submissions raced through single-flight dedup.
DEDUP_BURST = 8


def benchmark_spec(max_boxes: int):
    """The cardiac FK falsification scenario at benchmark resolution."""
    from dataclasses import replace

    from repro.scenarios import get_scenario

    spec = get_scenario("cardiac-fk-dome").spec()
    # widen the dome window to the hard edge of the excitable regime:
    # the barrier query then exhausts the whole box budget, so every
    # run does exactly max_boxes of work and boxes/sec is comparable
    spec.query["to_level"] = 0.88
    return spec.replace(
        solver=replace(
            spec.solver, delta=1e-6, max_boxes=max_boxes, shards=2
        ),
        name="cardiac-fk-dome[bench]",
    )


def run_local(spec) -> dict:
    """Reference run: the same epoch loop, in-process thread backend."""
    from dataclasses import replace

    from repro.api import Engine

    spec = spec.replace(solver=replace(spec.solver, shard_backend="thread"))
    t0 = time.perf_counter()
    with Engine(seed=0) as engine:
        report = engine.run(spec)
    seconds = time.perf_counter() - t0
    boxes = int(report.stats.get("boxes_processed", 0))
    return {
        "backend": "thread",
        "status": report.status.value,
        "seconds": round(seconds, 4),
        "boxes": boxes,
        "boxes_per_s": round(boxes / seconds, 1),
    }


def run_cluster(spec, workers: int) -> dict:
    """One falsification through a live lease/heartbeat worker pool."""
    from dataclasses import replace

    from repro.api import Engine
    from repro.cluster import ClusterBackend

    backend = ClusterBackend(workers)
    try:
        backend.wait_for_workers(workers, timeout=60.0)
        spec = spec.replace(
            solver=replace(spec.solver, shard_backend=backend)
        )
        t0 = time.perf_counter()
        with Engine(seed=0) as engine:
            report = engine.run(spec)
        seconds = time.perf_counter() - t0
        counters = dict(backend.status().get("counters", {}))
    finally:
        backend.shutdown()
    boxes = int(report.stats.get("boxes_processed", 0))
    return {
        "backend": f"cluster[{workers}w]",
        "workers": workers,
        "status": report.status.value,
        "seconds": round(seconds, 4),
        "boxes": boxes,
        "boxes_per_s": round(boxes / seconds, 1),
        "units": counters.get("completed", 0),
        "requeued": counters.get("requeued", 0),
    }


def run_dedup(spec) -> dict:
    """Race DEDUP_BURST identical submissions through single-flight."""
    from repro.api import Engine

    t0 = time.perf_counter()
    with Engine(seed=0, dedup=True) as engine:
        jobs = [engine.submit(spec, backend="thread")
                for _ in range(DEDUP_BURST)]
        statuses = {job.result(timeout=600).status.value for job in jobs}
        stats = dict(engine.dedup_stats() or {})
    seconds = time.perf_counter() - t0
    followers = int(stats.get("followers", 0))
    return {
        "burst": DEDUP_BURST,
        "seconds": round(seconds, 4),
        "leaders": int(stats.get("leaders", 0)),
        "followers": followers,
        "hit_ratio": round(followers / DEDUP_BURST, 3),
        "statuses_identical": len(statuses) == 1,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller box budget (CI smoke mode)")
    parser.add_argument("--max-boxes", type=int, default=None,
                        help="box budget (default 24000, quick: 6000)")
    parser.add_argument("--out", default="BENCH_cluster_throughput.json")
    args = parser.parse_args(argv)

    max_boxes = args.max_boxes or (6_000 if args.quick else 24_000)
    spec = benchmark_spec(max_boxes)
    local = run_local(spec)
    one = run_cluster(spec, workers=1)
    two = run_cluster(spec, workers=2)
    dedup = run_dedup(spec)

    cpus = os.cpu_count() or 1
    statuses = {local["status"], one["status"], two["status"]}
    result = {
        "benchmark": "cluster_throughput",
        "mode": "quick" if args.quick else "full",
        "scenario": "cardiac-fk-dome",
        "max_boxes": max_boxes,
        "cpus": cpus,
        "local": local,
        "cluster_1w": one,
        "cluster_2w": two,
        "speedup_2w": round(two["boxes_per_s"] / one["boxes_per_s"], 2),
        "verdicts_identical": len(statuses) == 1,
        "dedup": dedup,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    if not result["verdicts_identical"]:
        print("FAIL: cluster runs returned a different verdict")
        return 1
    if not dedup["statuses_identical"]:
        print("FAIL: dedup followers returned a different verdict")
        return 1
    if not args.quick:
        if dedup["leaders"] != 1 or dedup["followers"] != DEDUP_BURST - 1:
            print(f"FAIL: expected 1 leader / {DEDUP_BURST - 1} followers, "
                  f"got {dedup['leaders']} / {dedup['followers']}")
            return 1
        if cpus < 2:
            print(f"note: only {cpus} CPU(s); the {SPEEDUP_FLOOR}x floor "
                  "needs >= 2 cores and is not enforced here")
        elif result["speedup_2w"] < SPEEDUP_FLOOR:
            print(f"FAIL: two-worker cluster below the {SPEEDUP_FLOOR}x "
                  "throughput target")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
