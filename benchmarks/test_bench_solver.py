"""E9: characteristics of the delta-decision procedure (paper Sec. III).

Regenerates the solver-behavior series: solve time and work vs the
precision delta, vs problem dimension, and the delta-sat/unsat verdict
boundary.  (The DAC paper describes the procedure; these curves are the
standard way its implementations [52] are characterized.)
"""

import pytest

from repro.expr import exp, sin, variables
from repro.intervals import Box
from repro.logic import And, equals_within, in_range
from repro.solver import DeltaSolver, Status

x, y, z = variables("x y z")


def _transcendental_problem():
    """exp(x) * sin(y) = 0.3 with x + y = 1.5 -- a nonlinear system."""
    return And(
        equals_within(exp(x) * sin(y), 0.3, 1e-4),
        equals_within(x + y, 1.5, 1e-4),
    ), Box.from_bounds({"x": (-2.0, 2.0), "y": (-2.0, 2.0)})


@pytest.mark.parametrize("delta", [1e-1, 1e-2, 1e-3, 1e-4])
def test_delta_sweep(benchmark, delta):
    """Work grows as delta shrinks; verdict stays delta-sat."""
    phi, box = _transcendental_problem()
    solver = DeltaSolver(delta=delta, max_boxes=200_000)
    result = benchmark(lambda: solver.solve(phi, box))
    assert result.status is Status.DELTA_SAT
    w = result.witness
    import math

    assert abs(math.exp(w["x"]) * math.sin(w["y"]) - 0.3) < 0.05


@pytest.mark.parametrize("dim", [1, 2, 3, 4])
def test_dimension_sweep(benchmark, dim):
    """Sphere-shell membership in increasing dimension."""
    names = [f"v{i}" for i in range(dim)]
    from repro.expr import var

    sq = None
    for n in names:
        term = var(n) * var(n)
        sq = term if sq is None else sq + term
    phi = in_range(sq, 0.9, 1.0)
    box = Box.from_bounds({n: (-1.2, 1.2) for n in names})
    solver = DeltaSolver(delta=1e-3)
    result = benchmark(lambda: solver.solve(phi, box))
    assert result.status is Status.DELTA_SAT


def test_unsat_certificate(benchmark):
    """UNSAT requires exhausting the box: the expensive direction."""
    phi = And(
        equals_within(x * x + y * y, 1.0, 1e-3),
        equals_within(x + y, 2.5, 1e-3),  # line misses the circle
    )
    box = Box.from_bounds({"x": (-2, 2), "y": (-2, 2)})
    solver = DeltaSolver(delta=1e-3)
    result = benchmark(lambda: solver.solve(phi, box))
    assert result.status is Status.UNSAT


def test_paving_disc(benchmark):
    """Sat/unsat paving of the unit disc (BioPSy-style partitioning)."""
    solver = DeltaSolver(delta=1e-2)
    phi = 1 - x * x - y * y >= 0
    box = Box.from_bounds({"x": (-1, 1), "y": (-1, 1)})

    def pave():
        return solver.pave(phi, box, min_width=0.05)

    sat, unsat, und = benchmark(pave)
    area = sum(b.volume() for b in sat)
    assert 2.6 < area <= 3.3  # pi ~ 3.14 approximated from inside
