"""Warm-started vs. cold re-solve latency on the cardiac FK falsification.

Runs a cohort sweep of ``cardiac-fk-dome`` ascent falsifications with
the fast-gate closure invariant relaxed (``v`` allowed well above the
closed-gate band), which makes the dome ascent *robustly* feasible:
the delta-decision still pays a deep five-dimensional paving, but the
witness it finds certifies at delta = 0, so a
:class:`~repro.solver.incremental.PavingStore` can reuse it across
tightened and perturbed re-solves.  Three measurements:

* **cohort sweep** -- the dome-level sweep run cold (populating the
  store) and again warm (exact-configuration hits); wall-time ratio.
* **perturbed re-solves** -- the expensive sweep member re-solved with
  the delta tightened by half and with the dome bound nudged by one
  part in 4096, each cold (from scratch) and warm (witness carryover).
* **first-snapshot latency** -- the base cold run streams ``anytime``
  progress events; the first snapshot's arrival as a fraction of the
  solve's wall time.

CI runs this in ``--quick`` mode and uploads the JSON as the
``BENCH_warmstart_throughput.json`` artifact::

    python benchmarks/warmstart_throughput.py --quick --out BENCH_warmstart_throughput.json

The >= 3x warm re-solve floor (and the <= 10% first-snapshot bound)
is enforced in full mode only: quick mode shrinks the gate band until
the witness sits against the dome threshold, where reuse soundly
declines the perturbed variants and fixed overhead dominates ratios.
"""

from __future__ import annotations

import argparse
import json
import shutil
import tempfile
import time

#: Warm/cold speedup floor (sweep and each perturbed variant), full mode.
SPEEDUP_FLOOR = 3.0

#: The first anytime snapshot must land within this fraction of the
#: solve's wall time (full mode).
FIRST_SNAPSHOT_FRACTION = 0.10

#: Relative nudge of the dome bound (exactly representable).
PERTURB = 1.0 + 2.0 ** -12

#: Dome levels swept; the last member dominates the sweep wall time.
COHORT_LEVELS = (0.82, 0.85)


def benchmark_spec(delta: float, max_boxes: int, to_level: float,
                   v_gate: float):
    """One cardiac FK ascent falsification at benchmark resolution.

    ``v_gate`` relaxes the fast-gate closure bound: at 0.5 the dome
    window is robustly reachable (the certificate survives delta = 0,
    so the paving store can carry it into perturbed re-solves) while
    the five-dimensional search still costs > 10^5 boxes.
    """
    from dataclasses import replace

    from repro.scenarios import get_scenario

    spec = get_scenario("cardiac-fk-dome").spec()
    spec.query["to_level"] = to_level
    spec.query["state_bounds"]["v"] = [0.0, v_gate]
    return spec.replace(
        solver=replace(spec.solver, delta=delta, max_boxes=max_boxes),
        name=f"cardiac-fk-dome[warmstart-bench@{to_level}]",
    )


def run_once(spec, store: str | None, warm: bool, anytime: bool = False) -> dict:
    """One engine run; returns timing, verdict, and (optionally) the
    first-anytime-snapshot latency fraction."""
    from dataclasses import replace

    from repro.api import Engine

    spec = spec.replace(
        solver=replace(
            spec.solver, paving_store=store, warm_start=warm, anytime=anytime
        )
    )
    snapshots: list[float] = []
    kwargs = {}
    if anytime:
        kwargs = {
            "progress": lambda job, ev: (
                snapshots.append(time.perf_counter())
                if ev.stage == "anytime" else None
            ),
            "progress_interval": 0.0,
        }
    t0 = time.perf_counter()
    with Engine(seed=0, **kwargs) as engine:
        report = engine.run(spec)
    seconds = time.perf_counter() - t0
    out = {
        "status": report.status.value,
        "seconds": round(seconds, 4),
        "boxes": int(report.stats.get("boxes_processed", 0)),
    }
    if anytime and snapshots:
        out["first_snapshot_fraction"] = round(
            (snapshots[0] - t0) / seconds, 4
        )
    return out


def compare(name: str, spec, store: str) -> dict:
    """Cold-vs-warm timing of one perturbed re-solve variant."""
    cold = run_once(spec, store=None, warm=False)
    warmed = run_once(spec, store=store, warm=True)
    return {
        "variant": name,
        "cold": cold,
        "warm": warmed,
        "speedup": round(cold["seconds"] / max(warmed["seconds"], 1e-9), 1),
        "verdicts_identical": cold["status"] == warmed["status"],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller gate band and looser delta "
                             "(CI smoke mode; floors not enforced)")
    parser.add_argument("--delta", type=float, default=None,
                        help="base delta (default 1e-6, quick: 1e-4)")
    parser.add_argument("--max-boxes", type=int, default=None,
                        help="box budget (default 400000, quick: 50000; "
                             "must not bind, or nothing is reusable)")
    parser.add_argument("--out", default="BENCH_warmstart_throughput.json")
    args = parser.parse_args(argv)

    from dataclasses import replace

    delta = args.delta or (1e-4 if args.quick else 1e-6)
    max_boxes = args.max_boxes or (50_000 if args.quick else 400_000)
    v_gate = 0.05 if args.quick else 0.5
    cohort = [
        benchmark_spec(delta, max_boxes, level, v_gate)
        for level in COHORT_LEVELS
    ]
    base = cohort[-1]
    store = tempfile.mkdtemp(prefix="warmstart-bench-")
    try:
        # Cold sweep populates the store; the last (dominant) member
        # also streams anytime snapshots for the latency measurement.
        cold_sweep = [
            run_once(spec, store=store, warm=False, anytime=spec is base)
            for spec in cohort
        ]
        warm_sweep = [run_once(spec, store=store, warm=True)
                      for spec in cohort]
        cold_base = cold_sweep[-1]

        tightened = base.replace(
            solver=replace(base.solver, delta=base.solver.delta * 0.5)
        )
        perturbed_query = dict(base.query)
        perturbed_query["to_level"] = base.query["to_level"] * PERTURB
        perturbed = base.replace(query=perturbed_query)

        variants = [
            compare("tightened-delta", tightened, store),
            compare("perturbed-bound", perturbed, store),
        ]
    finally:
        shutil.rmtree(store, ignore_errors=True)

    cold_total = sum(r["seconds"] for r in cold_sweep)
    warm_total = sum(r["seconds"] for r in warm_sweep)
    result = {
        "benchmark": "warmstart_throughput",
        "mode": "quick" if args.quick else "full",
        "scenario": "cardiac-fk-dome",
        "delta": delta,
        "max_boxes": max_boxes,
        "v_gate": v_gate,
        "cohort_levels": list(COHORT_LEVELS),
        "sweep": {
            "cold": cold_sweep,
            "warm": warm_sweep,
            "cold_seconds": round(cold_total, 4),
            "warm_seconds": round(warm_total, 4),
            "speedup": round(cold_total / max(warm_total, 1e-9), 1),
            "verdicts_identical": all(
                c["status"] == w["status"]
                for c, w in zip(cold_sweep, warm_sweep)
            ),
        },
        "base_cold": cold_base,
        "variants": variants,
        "min_variant_speedup": min(v["speedup"] for v in variants),
        "verdicts_identical": all(
            v["verdicts_identical"] for v in variants
        ),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    if not result["verdicts_identical"] or not result["sweep"]["verdicts_identical"]:
        print("FAIL: a warm re-solve returned a different verdict")
        return 1
    if not args.quick:
        if result["sweep"]["speedup"] < SPEEDUP_FLOOR:
            print(f"FAIL: warm cohort sweep below the {SPEEDUP_FLOOR}x "
                  "latency target")
            return 1
        if result["min_variant_speedup"] < SPEEDUP_FLOOR:
            print(f"FAIL: warm re-solve below the {SPEEDUP_FLOOR}x "
                  "latency target")
            return 1
        frac = cold_base.get("first_snapshot_fraction")
        if frac is None or frac > FIRST_SNAPSHOT_FRACTION:
            print(f"FAIL: first anytime snapshot after "
                  f"{FIRST_SNAPSHOT_FRACTION:.0%} of the solve wall time")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
