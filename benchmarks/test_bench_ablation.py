"""Ablation benchmarks for the design choices called out in DESIGN.md.

* enclosure method: logarithmic-norm (our default) vs direct interval
  Taylor -- the substitution that makes long-horizon biology models
  tractable;
* simulation guidance in the BMC search: on vs off;
* contraction in the solver: HC4 fixed-point vs pure bisection.
"""

import pytest

from repro.bmc import BMCChecker, BMCOptions, BMCStatus, ReachSpec
from repro.expr import exp, var, variables
from repro.intervals import Box
from repro.logic import And, equals_within, in_range
from repro.models import logistic
from repro.odes import EnclosureError, flow_enclosure
from repro.solver import DeltaSolver, Status

x, y = variables("x y")


class TestEnclosureMethodAblation:
    """Lognorm vs Taylor on a stable long-horizon flow."""

    @pytest.mark.parametrize("method", ["lognorm", "taylor"])
    def test_logistic_horizon(self, benchmark, method):
        sys_ = logistic(r=0.8, K=8.0)

        def run():
            try:
                tube = flow_enclosure(
                    sys_, Box.from_point({"x": 0.5}), 10.0,
                    max_step=0.1, method=method, max_growth=1e6,
                )
                return tube.final()["x"].width()
            except EnclosureError:
                return float("inf")

        width = benchmark(run)
        if method == "lognorm":
            # contracts to a tight endpoint
            assert width < 0.1
        else:
            # direct Taylor wraps catastrophically on this horizon
            assert width > 1.0

    def test_taylor_wins_short_horizon_box(self, benchmark):
        """For wide boxes over short horizons, Taylor's per-dim boxes
        can beat the norm-ball representation."""
        sys_ = logistic(r=0.8, K=8.0)
        start = Box.from_bounds({"x": (0.4, 0.6)})

        def run():
            w_t = flow_enclosure(sys_, start, 0.3, max_step=0.05,
                                 method="taylor").final()["x"].width()
            w_l = flow_enclosure(sys_, start, 0.3, max_step=0.05,
                                 method="lognorm").final()["x"].width()
            return w_t, w_l

        w_t, w_l = benchmark(run)
        # both stay sound and within 3x of each other here
        assert w_t < 3 * w_l and w_l < 3 * w_t


class TestSimulationGuidanceAblation:
    @pytest.mark.parametrize("guided", [True, False])
    def test_bmc_sat_instance(self, benchmark, guided):
        from repro.models import thermostat

        h = thermostat()
        spec = ReachSpec(goal=in_range(var("x"), 18.5, 21.5), goal_mode="on",
                         max_jumps=1, time_bound=3.0)
        opt = BMCOptions(
            enclosure_step=0.1, max_boxes_per_path=400,
            use_simulation_guidance=guided,
        )
        res = benchmark(lambda: BMCChecker(h, opt).check(spec))
        assert res.status is BMCStatus.DELTA_SAT
        if guided:
            assert res.boxes_processed <= 5  # candidate verified directly


class TestContractionAblation:
    @pytest.mark.parametrize("tol", [1e-2, 0.5])
    def test_contraction_strength(self, benchmark, tol):
        """Weak contraction (high tol) forces more splitting."""
        phi = And(
            equals_within(exp(x) - y, 0.0, 1e-3),
            equals_within(x + y, 2.0, 1e-3),
        )
        box = Box.from_bounds({"x": (-2, 2), "y": (0, 8)})
        solver = DeltaSolver(delta=1e-3, contract_tol=tol)
        res = benchmark(lambda: solver.solve(phi, box))
        assert res.status is Status.DELTA_SAT
