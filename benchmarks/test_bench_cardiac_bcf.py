"""E3: BCF parameter synthesis for cardiac disorders (Sec. IV-A, [37]).

"Using the Bueno-Cherry-Fenton model, we have identified critical
parameter ranges that can cause cardiac disorders such as tachycardia
and fibrillation."

Reproduction:

* the APD90-vs-tau_so1 response (the figure-series of the companion
  study): small tau_so1 collapses the APD (tachycardia-inducing),
  large tau_so1 blocks repolarization within the window;
* delta-sat synthesis of a *tachycardic* tau_so1 (the AP repolarizes
  abnormally fast), and UNSAT of the same fast-repolarization query
  restricted to the normal range -- the who-wins boundary.
"""

import pytest

from repro.apps import Checkpoint, TimeSeriesData, falsify_with_data
from repro.models import (
    action_potential,
    ap_features,
    bcf_hybrid,
    bueno_cherry_fenton,
)

#: post-spike state of the EPI action potential (see E2)
X0 = {"u": 1.2827, "v": 0.0682, "w": 0.9807, "s": 0.1813}

#: abnormally fast early repolarization -- the voltage has already
#: dropped below 0.95 two milliseconds after the spike (at the normal
#: tau_so1 it is still at ~1.15); checked on the m4-regime dynamics
#: where the validated enclosures are tight
TACHY_BANDS = TimeSeriesData([Checkpoint(2.0, {"u": (0.2, 0.95)})])


def test_apd_vs_tau_so1_series(once):
    """The APD response curve: strictly increasing in tau_so1."""

    def sweep():
        out = []
        for tau in (5.0, 10.0, 20.0, 30.0181, 45.0, 60.0):
            traj = action_potential(
                bueno_cherry_fenton({"tau_so1": tau}), u0=0.4, t_final=900.0
            )
            f = ap_features(traj)
            out.append((tau, f.apd90 if f.repolarized else float("inf")))
        return out

    series = once(sweep)
    apds = [a for _t, a in series]
    assert all(a < b for a, b in zip(apds, apds[1:])), series
    # tachycardia-like regime at the small end
    assert apds[0] < 30.0
    # normal epicardial value near the published parameter
    normal = dict(series)[30.0181]
    assert 200 < normal < 350


def test_synthesize_tachycardic_tau(once):
    """delta-sat: some tau_so1 in (3, 12) produces fast repolarization."""
    verdict = once(
        falsify_with_data,
        bcf_hybrid().mode_system("m4"),
        TACHY_BANDS,
        {"tau_so1": (3.0, 12.0)},
        X0,
        delta=0.1,
        max_boxes=200,
        enclosure_step=0.05,
    )
    assert not verdict.rejected  # behavior realizable
    assert verdict.witness_params is not None
    assert verdict.witness_params["tau_so1"] < 12.0


def test_normal_range_cannot_tachycardia(once):
    """UNSAT: in the normal range (25, 40) the early repolarization is
    provably too slow -- the disorder needs the parameter excursion."""
    verdict = once(
        falsify_with_data,
        bcf_hybrid().mode_system("m4"),
        TACHY_BANDS,
        {"tau_so1": (25.0, 40.0)},
        X0,
        delta=0.02,
        max_boxes=300,
        enclosure_step=0.05,
    )
    assert verdict.rejected
    assert verdict.conclusive


def test_repolarization_failure_regime(benchmark):
    """Large tau_so1: no repolarization within 400 ms (fibrillation-
    prone prolongation), by simulation."""

    def check():
        traj = action_potential(
            bueno_cherry_fenton({"tau_so1": 200.0}), u0=0.4, t_final=400.0
        )
        return ap_features(traj)

    f = benchmark(check)
    assert not f.repolarized
