"""E6: time-bounded robustness of cardiac excitation (paper Sec. IV-C).

"Cardiac cells filter out insignificant stimulations ... we can verify
this by checking if the action potential can be successfully triggered
by a small range of stimulation.  An unsat answer returned by dReach
will guarantee that the model is robust to the corresponding
stimulation amplitude."

Reproduction on the FK hybrid automaton: sub-threshold stimulation is
*proven* unable to trigger an AP (UNSAT); supra-threshold stimulation
yields a delta-sat excitation witness; bisection brackets the
excitability threshold.
"""

from repro.apps import check_robustness, stimulus_threshold
from repro.bmc import BMCOptions
from repro.expr import var
from repro.intervals import Box
from repro.models import fenton_karma_hybrid

u = var("u")
AP_FIRED = u >= 0.8  # reaching 80% depolarization counts as an AP


def _rest_model(u_hi: float):
    return fenton_karma_hybrid(
        initial_mode="rest",
        init=Box.from_bounds({"u": (0.0, u_hi), "v": (1.0, 1.0), "w": (1.0, 1.0)}),
    )


def test_subthreshold_robust(once):
    """Stimuli up to u = 0.03 provably cannot trigger an AP."""
    h = _rest_model(0.03)
    res = once(
        check_robustness,
        h,
        {"u": (0.0, 0.03)},
        AP_FIRED,
        time_bound=30.0,
        max_jumps=2,
        options=BMCOptions(enclosure_step=0.5, max_boxes_per_path=80),
    )
    assert res.robust is True


def test_suprathreshold_excitable(once):
    """Stimuli in [0.3, 0.5] provably (delta) trigger an AP."""
    h = fenton_karma_hybrid(
        initial_mode="excited",
        init=Box.from_bounds({"u": (0.3, 0.5), "v": (1.0, 1.0), "w": (1.0, 1.0)}),
    )
    res = once(
        check_robustness,
        h,
        {"u": (0.3, 0.5)},
        AP_FIRED,
        time_bound=30.0,
        max_jumps=2,
        options=BMCOptions(
            enclosure_step=0.5, max_boxes_per_path=40, delta=0.1, verify_step=0.005
        ),
    )
    assert res.robust is False
    assert res.witness is not None


def test_threshold_bracket(once):
    """Bisection brackets the excitability threshold from the robust
    side (all stimuli in the rest region are provably safe)."""
    h = _rest_model(0.039)
    lo, hi = once(
        stimulus_threshold,
        h,
        "u",
        AP_FIRED,
        0.0,
        0.039,
        time_bound=30.0,
        max_jumps=2,
        iterations=4,
        options=BMCOptions(enclosure_step=0.5, max_boxes_per_path=80),
    )
    # the whole sub-u_v rest region is robust
    assert lo >= 0.03
