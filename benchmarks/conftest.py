"""Shared fixtures for the experiment benchmarks (E1-E11 in DESIGN.md).

Each benchmark file regenerates one paper artifact (figure, claim or
companion-study table) and times the key computation with
pytest-benchmark.  Expensive experiments run a single round
(``benchmark.pedantic(..., rounds=1)``): the numbers of interest are
the *reproduced verdicts and shapes*, not micro-timing stability.
"""

import pytest


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (expensive experiments)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
