"""Streaming-monitor fleet throughput and history-independence.

Two measurements over :mod:`repro.monitor`:

* **Fleet throughput** -- 1,000 concurrent streams (quick: 200) of a
  nested BLTL property fed round-robin through one
  :class:`~repro.monitor.FleetSupervisor` (batched ingest, vectorized
  predicate pre-screen), reporting samples/sec and verdict counts.
* **History independence** -- one stream driven through many episodes;
  the per-episode wall time of the last decile must stay within a
  small factor of the first decile (the episode ring resets on
  rollover and window frontiers never rescan decided prefixes, so
  per-sample cost must not grow with stream lifetime).

CI runs this in ``--quick`` mode and uploads the JSON as the
``BENCH_monitor_throughput.json`` artifact::

    python benchmarks/monitor_throughput.py --quick --out BENCH_monitor_throughput.json
"""

from __future__ import annotations

import argparse
import json
import time


def build_formula():
    """A nested property exercising F/G frontiers and the Until automaton."""
    from repro.expr import parse_expr
    from repro.logic import Atom
    from repro.smc.bltl import F, G, U

    def atom(text, strict=False):
        return Atom(parse_expr(text), strict)

    # tuned so a sin+noise fleet splits into a true/false verdict mix,
    # exercising both early-exit polarities
    return G(6.0, F(2.0, atom("x + 0.3"))) & U(4.0, atom("x + 1.5"),
                                               atom("x - 0.8", True))


def fleet_throughput(streams: int, samples_per_stream: int, batch: int):
    """Feed a synthetic fleet; return (seconds, samples_fed, summary)."""
    import numpy as np

    from repro.monitor import FleetSupervisor

    phi = build_formula()
    horizon = phi.horizon()
    sup = FleetSupervisor()
    rng = np.random.default_rng(0)
    phases = rng.uniform(0.0, 6.28, streams)
    for i in range(streams):
        sup.add_stream(f"s{i:04d}", phi, early_stop=False)

    dt = horizon / (samples_per_stream - 1)  # one episode spans the horizon
    fed = 0
    t0 = time.perf_counter()
    for k in range(samples_per_stream):
        t = k * dt
        xs = np.sin(t + phases) + rng.normal(0.0, 0.3, streams)
        rows = [(f"s{i:04d}", t, {"x": float(xs[i])}) for i in range(streams)]
        for lo in range(0, streams, batch):
            sup.ingest(rows[lo:lo + batch])
        fed += streams
    sup.close_all()
    return time.perf_counter() - t0, fed, sup.summary()


def history_independence(episodes: int, samples_per_episode: int):
    """Per-episode wall times for one long-lived stream."""
    import numpy as np

    from repro.monitor import StreamState

    phi = build_formula()
    horizon = phi.horizon()
    s = StreamState("long", phi, early_stop=False)
    rng = np.random.default_rng(1)
    dt = horizon / (samples_per_episode - 1)
    clock = 0.0
    times = []
    for _ in range(episodes):
        xs = rng.normal(0.0, 1.0, samples_per_episode)
        t0 = time.perf_counter()
        for k in range(samples_per_episode):
            s.push(clock + k * dt, {"x": float(xs[k])})
        s.end_episode()
        times.append(time.perf_counter() - t0)
        clock += horizon + 1.0
    return times


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller fleet / fewer episodes (CI smoke mode)")
    parser.add_argument("--streams", type=int, default=None,
                        help="fleet size (default 1000, quick: 200)")
    parser.add_argument("--out", default="BENCH_monitor_throughput.json")
    args = parser.parse_args(argv)

    streams = args.streams or (200 if args.quick else 1000)
    samples_per_stream = 40 if args.quick else 80
    episodes = 40 if args.quick else 120
    samples_per_episode = 30 if args.quick else 60

    seconds, fed, summary = fleet_throughput(streams, samples_per_stream,
                                             batch=256)
    ep_times = history_independence(episodes, samples_per_episode)
    decile = max(1, len(ep_times) // 10)
    early = sum(ep_times[:decile]) / decile
    late = sum(ep_times[-decile:]) / decile
    ratio = late / early if early > 0 else None

    result = {
        "benchmark": "monitor_throughput",
        "mode": "quick" if args.quick else "full",
        "streams": streams,
        "samples_fed": fed,
        "seconds": round(seconds, 4),
        "samples_per_s": round(fed / seconds, 1),
        "fleet": summary,
        "episodes": episodes,
        "per_episode_ms_first_decile": round(early * 1e3, 4),
        "per_episode_ms_last_decile": round(late * 1e3, 4),
        "history_cost_ratio": round(ratio, 3) if ratio is not None else None,
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    # the ratio bound is deliberately loose: CI machines are noisy, but
    # a per-sample cost growing with history shows up as ratio ~ O(episodes)
    if ratio is not None and ratio > 5.0:
        print("FAIL: per-episode cost grew with stream history")
        return 1
    if summary["streams"] != streams or summary["episodes"] != streams:
        print("FAIL: fleet did not complete its episodes")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
