"""E11: BioPSy-style guaranteed parameter-set synthesis (Sec. IV-A, [53]).

"Parameter estimation of single-mode ODE models can be encoded as SMT
formulas by BioPSy and solved by dReal."

Reproduction: point calibration (delta-sat with a correct witness),
rejection of inconsistent data (unsat), and the paving mode partitioning
the parameter box into guaranteed-sat / guaranteed-unsat / undecided
regions whose inner volume matches the analytic answer.
"""

import math

import pytest

from repro.apps import (
    CalibrationStatus,
    Checkpoint,
    SMTCalibrator,
    TimeSeriesData,
)
from repro.expr import var
from repro.models import logistic
from repro.odes import ODESystem, rk45


def _decay():
    return ODESystem({"x": -var("k") * var("x")}, {"k": 1.0}, name="decay")


def test_point_calibration(once):
    k_true = 1.5
    data = TimeSeriesData.from_samples(
        [(t, {"x": math.exp(-k_true * t)}) for t in (0.5, 1.0, 2.0)],
        tolerance=0.02,
    )
    calib = SMTCalibrator(_decay(), data, {"k": (0.1, 3.0)}, {"x": 1.0}, delta=0.02)
    res = once(calib.calibrate)
    assert res.status is CalibrationStatus.DELTA_SAT
    assert res.params["k"] == pytest.approx(k_true, abs=0.1)


def test_two_parameter_logistic(once):
    sys_ = logistic()
    true = {"r": 0.8, "K": 8.0}
    traj = rk45(sys_, {"x": 0.5}, (0.0, 10.0), params=true)
    data = TimeSeriesData.from_samples(
        [(t, {"x": traj.value("x", t)}) for t in (2.0, 5.0, 10.0)],
        tolerance=0.05,
    )
    calib = SMTCalibrator(
        sys_, data, {"r": (0.2, 2.0), "K": (4.0, 12.0)}, {"x": 0.5},
        delta=0.05, enclosure_step=0.1,
    )
    res = once(calib.calibrate)
    assert res.status is CalibrationStatus.DELTA_SAT
    assert res.params["K"] == pytest.approx(8.0, abs=0.8)


def test_inconsistent_data_unsat(once):
    data = TimeSeriesData.from_samples(
        [(1.0, {"x": 0.9}), (2.0, {"x": 0.1})], tolerance=0.02
    )
    calib = SMTCalibrator(
        _decay(), data, {"k": (0.01, 5.0)}, {"x": 1.0},
        delta=0.01, max_boxes=1500,
    )
    res = once(calib.calibrate)
    assert res.status is CalibrationStatus.UNSAT


def test_region_synthesis_volume(once):
    """Paving: x(1) in [e^-1.6, e^-1.4] <=> k in [1.4, 1.6]; the inner
    (guaranteed) boxes must cover most of that interval and nothing
    outside it."""
    data = TimeSeriesData([Checkpoint(1.0, {"x": (math.exp(-1.6), math.exp(-1.4))})])
    calib = SMTCalibrator(
        _decay(), data, {"k": (0.5, 2.5)}, {"x": 1.0},
        delta=0.005, max_boxes=400,
    )
    sat, unsat, und = once(calib.synthesize_region, 0.01)
    assert sat
    for b in sat:
        assert 1.35 <= b["k"].lo and b["k"].hi <= 1.65
    inner_width = sum(b["k"].width() for b in sat)
    assert inner_width == pytest.approx(0.2, abs=0.06)
    outer_width = sum(b["k"].width() for b in unsat)
    assert outer_width > 1.5  # most of [0.5, 2.5] proven infeasible
