"""E8: SMC-based analysis (paper Fig. 2 left loop, [11]-[13]).

Statistical model checking under probabilistic initial states: BLTL
probability estimation (Chernoff and Bayesian), SPRT hypothesis
testing, and SMC-driven parameter estimation -- the fallback analysis
route the framework takes when SMT calibration rejects or stalls.
"""

from repro.expr import var
from repro.models import sir
from repro.odes import rk45
from repro.smc import (
    F,
    G,
    InitialDistribution,
    StatisticalModelChecker,
    cross_entropy_search,
    robustness,
)

i_var = var("i")


def _checker(seed=4, horizon=120.0, **model_kwargs):
    model = sir(**model_kwargs)
    init = InitialDistribution(
        {"s": 0.99, "i": (0.005, 0.03), "r": 0.0, "beta": (0.25, 0.5)}
    )
    return StatisticalModelChecker(model, init, horizon=horizon, seed=seed)


def test_probability_estimation(once):
    """Chernoff-guaranteed outbreak probability."""
    checker = _checker()
    phi = F(120.0, i_var >= 0.3)
    p_hat, n = once(checker.probability, phi, epsilon=0.1, alpha=0.05)
    assert n == 185  # ln(2/0.05) / (2 * 0.01)
    assert 0.5 < p_hat <= 1.0  # outbreaks dominate at these betas


def test_sprt_efficiency(once):
    """SPRT needs far fewer samples than fixed-size estimation for an
    easy hypothesis -- the sequential-testing advantage."""
    checker = _checker(seed=7)
    phi = F(120.0, i_var >= 0.3)
    res = once(checker.hypothesis_test, phi, 0.2, 0.01, 0.01, 0.05)
    assert res.accept
    assert res.samples_used < 185  # beats the Chernoff bound


def test_bayesian_posterior(once):
    checker = _checker(seed=9)
    phi = F(120.0, i_var >= 0.3)
    est = once(checker.bayesian, phi, 120)
    assert est.ci_low < est.mean < est.ci_high
    assert est.ci_high - est.ci_low < 0.35


def test_safety_under_fast_recovery(once):
    """R0 < 1: prevalence stays below 5% with probability ~1."""
    model = sir(beta=0.3, gamma=0.4)
    init = InitialDistribution({"s": 0.99, "i": (0.005, 0.03), "r": 0.0})
    checker = StatisticalModelChecker(model, init, horizon=120.0, seed=5)
    p_hat, _n = once(checker.probability, G(120.0, i_var <= 0.05), 0.1, 0.05)
    assert p_hat > 0.9


def test_smc_parameter_estimation(once):
    """Cross-entropy search recovers beta from a peak-prevalence band."""
    truth = 0.42
    model = sir()
    ref = rk45(model, {"s": 0.99, "i": 0.01, "r": 0.0}, (0.0, 120.0),
               params={"beta": truth, "gamma": 0.1})
    peak = ref.column("i").max()
    band = (i_var >= peak - 0.02) & (i_var <= peak + 0.02)
    phi = F(120.0, band) & G(120.0, i_var <= peak + 0.02)

    def objective(params):
        traj = rk45(model, {"s": 0.99, "i": 0.01, "r": 0.0}, (0.0, 120.0),
                    params={"beta": params["beta"], "gamma": 0.1})
        return robustness(phi, traj)

    res = once(
        cross_entropy_search, objective, {"beta": (0.2, 0.8)},
        24, 0.25, 10, 0,
    )
    assert res.satisfied
    assert abs(res.best_params["beta"] - truth) < 0.05
