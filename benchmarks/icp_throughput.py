"""Scalar vs. vectorized vs. compiled ICP throughput on a fixed problem.

Runs the same BioPSy-style parameter-set paving through one
:class:`~repro.solver.DeltaSolver` per execution path -- the legacy
scalar loop (``frontier_size=1``), the batch-of-boxes numpy frontier
loop, and (when the ``[jit]`` extra is installed) the compiled tape
kernel (``kernel="numba"``) -- and reports boxes/sec for each, plus the
speedups and a partition identity check proving every path classified
the exact same sub-boxes.  The >=5x compiled-over-numpy floor is
enforced in full mode only.

CI runs this in ``--quick`` mode and uploads the JSON as the
``BENCH_icp_throughput.json`` artifact::

    python benchmarks/icp_throughput.py --quick --out BENCH_icp_throughput.json
"""

from __future__ import annotations

import argparse
import json
import time


def problem():
    """A warped annulus with a bilinear side constraint: enough curvature
    that the paving needs thousands of boxes, so the frontier fills up."""
    from repro.expr import sin, variables
    from repro.intervals import Box
    from repro.logic import And, in_range

    x, y = variables("x y")
    phi = And(
        in_range(x ** 2 + y ** 2 + 0.3 * sin(3 * x) * sin(3 * y), 0.55, 0.95),
        in_range(x * y, -0.2, 0.6),
    )
    box = Box.from_bounds({"x": (-1.5, 1.5), "y": (-1.5, 1.5)})
    return phi, box


def run_paving(frontier_size: int, min_width: float, kernel: str = "numpy") -> dict:
    from repro.solver import DeltaSolver

    phi, box = problem()
    solver = DeltaSolver(
        delta=1e-3, frontier_size=frontier_size, max_boxes=1_000_000,
        kernel=kernel,
    )
    if kernel != "numpy" and frontier_size > 1:
        # warm the jit caches outside the timed region: the one-time
        # compile cost is amortized in real workloads and would swamp a
        # single quick-mode paving
        solver.pave(phi, box, min_width=max(min_width * 8, 0.05))
    t0 = time.perf_counter()
    sat, unsat, undecided = solver.pave(phi, box, min_width=min_width)
    seconds = time.perf_counter() - t0
    # every classified leaf was popped, contracted and judged once; the
    # boxes/sec metric counts those leaves
    leaves = len(sat) + len(unsat) + len(undecided)
    return {
        "frontier_size": frontier_size,
        "kernel": kernel,
        "seconds": round(seconds, 4),
        "leaves": leaves,
        "sat_boxes": len(sat),
        "unsat_boxes": len(unsat),
        "undecided_boxes": len(undecided),
        "boxes_per_s": round(leaves / seconds, 1),
        "_partition": sorted(
            (name, iv.lo, iv.hi)
            for b in sat + unsat + undecided
            for name, iv in b.items()
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="coarser paving (CI smoke mode)")
    parser.add_argument("--frontier", type=int, default=1024,
                        help="frontier size K of the vectorized run")
    parser.add_argument("--min-width", type=float, default=None,
                        help="paving resolution (default 0.005, quick: 0.01)")
    parser.add_argument("--out", default="BENCH_icp_throughput.json")
    args = parser.parse_args(argv)

    from repro.solver.lower import numba_usable

    min_width = args.min_width or (0.01 if args.quick else 0.005)
    scalar = run_paving(frontier_size=1, min_width=min_width)
    vectorized = run_paving(frontier_size=args.frontier, min_width=min_width)
    kernels = {"scalar": scalar, "numpy": vectorized}
    if numba_usable():
        kernels["numba"] = run_paving(
            frontier_size=args.frontier, min_width=min_width, kernel="numba"
        )

    # every kernel row must classify byte-compatible partitions
    # (bound-for-bound up to single-ulp contraction differences of the
    # scalar-vs-vectorized fixpoint loops; the vectorized kernels agree
    # exactly among themselves)
    partitions = {name: row.pop("_partition") for name, row in kernels.items()}
    ref = partitions["numpy"]

    def agrees(part) -> bool:
        return len(part) == len(ref) and all(
            a[0] == b[0] and abs(a[1] - b[1]) <= 1e-9 and abs(a[2] - b[2]) <= 1e-9
            for a, b in zip(part, ref)
        )

    same_partition = all(agrees(p) for p in partitions.values())

    result = {
        "benchmark": "icp_throughput",
        "mode": "quick" if args.quick else "full",
        "min_width": min_width,
        "scalar": scalar,
        "vectorized": vectorized,
        "kernels": kernels,
        "speedup": round(vectorized["boxes_per_s"] / scalar["boxes_per_s"], 2),
        "partitions_identical": same_partition,
    }
    if "numba" in kernels:
        result["kernel_speedup"] = round(
            kernels["numba"]["boxes_per_s"] / vectorized["boxes_per_s"], 2
        )
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    if not same_partition:
        print("FAIL: a solver path classified different boxes")
        return 1
    if not args.quick and result["speedup"] < 5.0:
        print("FAIL: vectorized ICP below the 5x throughput target")
        return 1
    if not args.quick and "kernel_speedup" in result and result["kernel_speedup"] < 5.0:
        print("FAIL: compiled kernel below the 5x throughput target "
              "over the numpy frontier loop")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
