"""E5: TBI combination-therapy synthesis (paper Sec. IV-B, Fig. 3).

"The mode path 0 -> A -> B -> 0 suggests a successful treatment scheme
defined by a set of jump conditions. ... the problem of determining
which drug to deliver at what time evolves into a parameter synthesis
problem for hybrid automata."

Reproduction: the dose-response structure (therapeutic window), a
minimum-drug BMC plan with synthesized decision threshold, and the
threshold-dependence of survival at high dose.
"""

from repro.apps import synthesize_reach_therapy
from repro.bmc import BMCOptions
from repro.expr import var
from repro.hybrid import simulate_hybrid
from repro.logic import And
from repro.models import tbi_model

NO_TREATMENT = {f"theta_{X}": 10.0 for X in "ABCD"} | {"theta_E": -1.0}

RECOVERY_GOAL = And(
    var("clox") <= 0.9, var("rip3") <= 0.9, var("peox") <= 0.9,
    var("il") <= 0.9, var("nad") >= 0.25,
)


def test_dose_response_table(once):
    """Fig. 3's premise: untreated cells die above a dose threshold;
    the default policy opens a therapeutic window."""

    def table():
        rows = []
        for dose in (0.3, 0.5, 0.7, 0.9, 1.1):
            un = simulate_hybrid(
                tbi_model(NO_TREATMENT, dose=dose), t_final=120.0, max_jumps=10
            ).mode_path()[-1]
            tr = simulate_hybrid(
                tbi_model(dose=dose), t_final=120.0, max_jumps=25
            ).mode_path()[-1]
            rows.append((dose, un, tr))
        return rows

    rows = once(table)
    outcome = {dose: (un, tr) for dose, un, tr in rows}
    assert outcome[0.3] == ("live", "live")        # below injury threshold
    assert outcome[0.7][0] == "death"              # untreated dies
    assert outcome[0.7][1] != "death"              # therapy rescues
    assert outcome[0.9][0] == "death" and outcome[0.9][1] != "death"
    assert outcome[1.1] == ("death", "death")      # default policy fails


def test_minimum_drug_plan(once):
    """BMC threshold synthesis: one drug decision reaches recovery."""
    h = tbi_model(dose=0.55, drugs=("drug_A",))
    plan = once(
        synthesize_reach_therapy,
        h,
        RECOVERY_GOAL,
        {"theta_A": (0.2, 0.8)},
        goal_mode="drug_A",
        max_drugs=1,
        time_bound=30.0,
        options=BMCOptions(
            enclosure_step=0.5, max_boxes_per_path=40, verify_step=0.25, delta=0.2
        ),
    )
    assert plan.found
    assert plan.mode_path == ["live", "drug_A"]
    assert plan.n_drugs == 1
    assert 0.2 <= plan.thresholds["theta_A"] <= 0.8


def test_threshold_dependence_at_high_dose(once):
    """At dose 1.1 only early intervention survives: the jump-condition
    synthesis problem has a nontrivial feasible region."""

    def scan():
        out = {}
        for th in (0.3, 0.5):
            params = {f"theta_{X}": th for X in "ABCD"} | {"theta_E": 0.5}
            traj = simulate_hybrid(
                tbi_model(params, dose=1.1), t_final=120.0, max_jumps=25
            )
            out[th] = traj.mode_path()[-1]
        return out

    out = once(scan)
    assert out[0.3] != "death"   # early intervention survives
    assert out[0.5] == "death"   # late intervention dies


def test_sequential_therapy_path(benchmark):
    """The paper's 0 -> A -> B -> ... -> 0 pattern appears in the
    simulated treated trajectory at intermediate dose."""

    def run():
        return simulate_hybrid(tbi_model(dose=0.7), t_final=120.0, max_jumps=25)

    traj = benchmark(run)
    path = traj.mode_path()
    assert path[0] == "live"
    assert any(m.startswith("drug") for m in path)
    assert path[-1] == "live"  # recovered
