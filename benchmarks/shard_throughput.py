"""Sharded vs. single-core ICP throughput on the cardiac FK falsification.

Runs the ``cardiac-fk-dome`` barrier falsification at benchmark
resolution -- the dome window widened to the hard edge of the
excitable regime, where the paving must grind through the full box
budget -- once on one core (``shards=1``, the vectorized frontier
loop) and once sharded across worker processes, and reports boxes/sec
for each plus the parallel speedup.  Both runs must return identical
verdicts (the sharded driver's conformance contract).

CI runs this in ``--quick`` mode and uploads the JSON as the
``BENCH_shard_throughput.json`` artifact::

    python benchmarks/shard_throughput.py --quick --out BENCH_shard_throughput.json

The >= 2.5x speedup floor is enforced in full mode on machines with at
least 4 CPUs (process-level parallelism cannot beat the core count).
"""

from __future__ import annotations

import argparse
import json
import os
import time

#: Parallel speedup floor at --shards 4, enforced in full mode.
SPEEDUP_FLOOR = 2.5


def benchmark_spec(max_boxes: int):
    """The cardiac FK falsification scenario at benchmark resolution."""
    from dataclasses import replace

    from repro.scenarios import get_scenario

    spec = get_scenario("cardiac-fk-dome").spec()
    # widen the dome window to the hard edge of the excitable regime:
    # the barrier query then exhausts the whole box budget, so both
    # runs do exactly max_boxes of work and boxes/sec is comparable
    spec.query["to_level"] = 0.88
    return spec.replace(
        solver=replace(
            spec.solver, delta=1e-6, max_boxes=max_boxes, shards=1
        ),
        name="cardiac-fk-dome[bench]",
    )


def run_once(spec, shards: int) -> dict:
    from dataclasses import replace

    from repro.api import Engine

    spec = spec.replace(solver=replace(spec.solver, shards=shards))
    t0 = time.perf_counter()
    with Engine(seed=0) as engine:
        report = engine.run(spec)
    seconds = time.perf_counter() - t0
    boxes = int(report.stats.get("boxes_processed", 0))
    return {
        "shards": shards,
        "status": report.status.value,
        "seconds": round(seconds, 4),
        "boxes": boxes,
        "boxes_per_s": round(boxes / seconds, 1),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller box budget (CI smoke mode)")
    parser.add_argument("--shards", type=int, default=4,
                        help="shard count of the parallel run")
    parser.add_argument("--max-boxes", type=int, default=None,
                        help="box budget (default 40000, quick: 6000)")
    parser.add_argument("--out", default="BENCH_shard_throughput.json")
    args = parser.parse_args(argv)

    max_boxes = args.max_boxes or (6_000 if args.quick else 40_000)
    spec = benchmark_spec(max_boxes)
    single = run_once(spec, shards=1)
    sharded = run_once(spec, shards=args.shards)

    cpus = os.cpu_count() or 1
    result = {
        "benchmark": "shard_throughput",
        "mode": "quick" if args.quick else "full",
        "scenario": "cardiac-fk-dome",
        "max_boxes": max_boxes,
        "cpus": cpus,
        "single": single,
        "sharded": sharded,
        "speedup": round(sharded["boxes_per_s"] / single["boxes_per_s"], 2),
        "verdicts_identical": single["status"] == sharded["status"],
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    if not result["verdicts_identical"]:
        print("FAIL: sharded run returned a different verdict")
        return 1
    if not args.quick:
        if cpus < 4:
            print(f"note: only {cpus} CPU(s); the {SPEEDUP_FLOOR}x floor "
                  "needs >= 4 cores and is not enforced here")
        elif result["speedup"] < SPEEDUP_FLOOR:
            print(f"FAIL: sharded ICP below the {SPEEDUP_FLOOR}x "
                  "throughput target")
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
