"""E2: Fenton-Karma spike-and-dome falsification (paper Sec. IV-A, [37]).

The paper's claim: "the Fenton-Karma model of cardiac cells is unable
to reproduce the 'spike-and-dome' morphology of action potential which
has been observed in epicardial cells."

Reproduction: dome morphology encoded as data bands (notch at u <= 0.75
followed by a re-rise to u >= 0.85); delta-decision calibration over
the FK current time scales returns UNSAT -> hypothesis rejected.  The
same query on BCF (epicardial) is delta-sat.
"""

from repro.apps import falsify_ascent
from repro.models import (
    action_potential,
    ap_features,
    bcf_hybrid,
    bueno_cherry_fenton,
    fenton_karma,
    fenton_karma_hybrid,
)

#: physiological ranges around the Beeler-Reuter fit of [55]
FK_RANGES = {"tau_r": (10.0, 38.0), "tau_si": (28.0, 130.0)}
#: gate invariants at the notch: in the excited regime dv/dt < 0, so
#: v has decayed below 0.01 by the time the notch forms
FK_STATE_BOUNDS = {"u": (0.0, 1.2), "v": (0.0, 0.01), "w": (0.0, 1.0)}


def test_fk_dome_rejected(once):
    """The headline unsat: the FK voltage cannot re-rise through the
    dome window [0.75, 0.85] for any physiological parameters."""
    fk_excited = fenton_karma_hybrid().mode_system("excited")
    verdict = once(
        falsify_ascent,
        fk_excited,
        "u",
        0.75,
        0.85,
        FK_STATE_BOUNDS,
        FK_RANGES,
    )
    assert verdict.rejected
    assert verdict.conclusive


def test_bcf_dome_realizable(once):
    """Control: the BCF dynamics can ascend through its dome window --
    the same barrier query is delta-sat with a witness."""
    bcf_m4 = bcf_hybrid().mode_system("m4")
    verdict = once(
        falsify_ascent,
        bcf_m4,
        "u",
        1.0,
        1.2,
        {"u": (0.0, 1.6), "v": (0.0, 1.0), "w": (0.0, 1.0), "s": (0.0, 1.0)},
        {"tau_so1": (25.0, 35.0)},
    )
    assert not verdict.rejected
    assert verdict.conclusive
    assert verdict.witness_params is not None


def test_simulated_morphology(benchmark):
    """Simulation-level confirmation of the same claim (figure data)."""

    def features():
        fk = ap_features(action_potential(fenton_karma(), u0=0.4, t_final=500.0))
        bcf = ap_features(
            action_potential(bueno_cherry_fenton(), u0=0.4, t_final=500.0)
        )
        return fk, bcf

    fk, bcf = benchmark(features)
    assert not fk.has_dome
    assert bcf.has_dome
    assert bcf.apd90 is not None and 200 < bcf.apd90 < 350
