"""E4: personalized prostate-cancer therapy (paper Sec. IV-B, [38]).

"In a proof-of-concept study, we have used this approach to identify
personalized therapeutic strategies for prostate cancer patients."

Reproduction: the per-patient outcome table under intermittent androgen
suppression (IAS), threshold-policy synthesis succeeding for the
responder and failing for the non-responder -- verdicts that *differ by
patient parameters*, which is the personalization claim.
"""

from repro.apps import synthesize_threshold_policy
from repro.expr import var
from repro.hybrid import simulate_hybrid
from repro.models import PATIENT_PROFILES, ias_model
from repro.smc import G


def test_patient_outcome_table(once):
    """Default schedule: responder controlled, others relapse."""

    def table():
        out = {}
        for name in PATIENT_PROFILES:
            traj = simulate_hybrid(ias_model(name), t_final=1500.0, max_jumps=60)
            final = traj.final()
            out[name] = {
                "y": final["y"],
                "cycles": max(0, len(traj.segments) - 1) // 2,
            }
        return out

    table_ = once(table)
    assert table_["patient_A"]["y"] < 1.0          # controlled
    assert table_["patient_A"]["cycles"] >= 3      # cycling therapy
    assert table_["patient_B"]["y"] > 100.0        # slow relapse
    assert table_["patient_C"]["y"] > 1e6          # fast relapse


def test_policy_synthesis_responder(once):
    """Threshold synthesis succeeds for d > 1 (patient A)."""
    h = ias_model("patient_A")
    phi = G(600.0, (var("x") + var("y")) <= 40.0)
    res = once(
        synthesize_threshold_policy,
        h,
        phi,
        {"r0": (0.5, 8.0), "r1": (8.5, 25.0)},
        init={"x": 15.0, "y": 0.01, "z": 12.0},
        horizon=610.0,
        population=8,
        iterations=4,
        seed=2,
        confirm_samples=8,
    )
    assert res.found
    assert res.success_probability == 1.0
    assert 0.5 <= res.thresholds["r0"] <= 8.0


def test_policy_synthesis_nonresponder_fails(once):
    """No schedule controls the d < 1 patient over 900 days: the
    synthesis comes back without a feasible policy."""
    h = ias_model("patient_C")
    phi = G(900.0, (var("x") + var("y")) <= 40.0)
    res = once(
        synthesize_threshold_policy,
        h,
        phi,
        {"r0": (0.5, 8.0), "r1": (8.5, 25.0)},
        init={"x": 15.0, "y": 0.01, "z": 12.0},
        horizon=910.0,
        population=8,
        iterations=4,
        seed=2,
        confirm_samples=4,
    )
    assert not res.found


def test_continuous_vs_intermittent(benchmark):
    """For the responder, intermittent therapy controls the resistant
    clone better than continuous suppression (the IAS rationale)."""

    def compare():
        from repro.odes import rk45
        from repro.models import ias_on_treatment_ode

        inter = simulate_hybrid(ias_model("patient_A"), t_final=1200.0, max_jumps=60)
        cont = rk45(
            ias_on_treatment_ode("patient_A"),
            {"x": 15.0, "y": 0.01, "z": 12.0},
            (0.0, 1200.0),
        )
        return inter.final()["y"], cont.final()["y"]

    y_inter, y_cont = benchmark(compare)
    assert y_inter < y_cont
