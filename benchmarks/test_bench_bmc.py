"""E10: BMC scaling (paper Sec. III-C).

Reach-check cost vs unrolling depth k and vs the per-mode time bound M
on the thermostat, plus parameter synthesis over a jump threshold --
the shape dReach exhibits on multi-mode models [54].
"""

import pytest

from repro.bmc import BMCChecker, BMCOptions, BMCStatus, ReachSpec
from repro.expr import var
from repro.logic import in_range
from repro.models import thermostat

x = var("x")

_OPTS = BMCOptions(enclosure_step=0.1, max_boxes_per_path=120)


@pytest.mark.parametrize("k", [0, 1, 2, 3])
def test_depth_sweep(benchmark, k):
    """The heater band [18, 22] needs k >= 1 jumps to revisit 'on'."""
    h = thermostat()
    spec = ReachSpec(
        goal=in_range(x, 18.5, 21.5), goal_mode="on", max_jumps=k, time_bound=3.0
    )
    checker = BMCChecker(h, _OPTS)
    result = benchmark(lambda: checker.check(spec))
    if k == 0:
        assert result.status is BMCStatus.UNSAT  # no path ends in "on"
    else:
        assert result.status is BMCStatus.DELTA_SAT


@pytest.mark.parametrize("M", [0.5, 1.0, 2.0, 4.0])
def test_time_bound_sweep(benchmark, M):
    """Cooling from 20.5 to 18 takes t = ln(20.5/18) ~ 0.13; reaching
    x <= 18.05 in mode 'off' is feasible for every M here, with work
    growing in the dwell-search window M."""
    h = thermostat()
    spec = ReachSpec(goal=(18.05 - x >= 0), goal_mode="off", max_jumps=0, time_bound=M)
    checker = BMCChecker(h, _OPTS)
    result = benchmark(lambda: checker.check(spec))
    assert result.status is BMCStatus.DELTA_SAT


def test_threshold_synthesis(benchmark):
    """Parameter synthesis over the switch-on threshold (Def. 13): the
    checker must return a valid threshold witness together with a dwell
    schedule realizing the goal."""
    h = thermostat()
    spec = ReachSpec(goal=(x >= 19.0), goal_mode="on", max_jumps=1, time_bound=3.0)
    checker = BMCChecker(h, _OPTS)
    result = benchmark(
        lambda: checker.check(spec, param_ranges={"theta_on": (15.0, 21.0)})
    )
    assert result.status is BMCStatus.DELTA_SAT
    theta = result.witness_params["theta_on"]
    assert 15.0 <= theta <= 21.0
    # replay the witness: simulate with the synthesized threshold and
    # confirm the goal is realized on the returned mode path
    from repro.hybrid import simulate_hybrid

    traj = simulate_hybrid(
        h, result.witness_x0, t_final=6.0, params={"theta_on": theta}
    )
    assert "on" in traj.mode_path()
    assert traj.flatten().column("x").max() >= 19.0


def test_unreachable_band(benchmark):
    """x can never exceed the initial hull + heater ceiling: unsat."""
    h = thermostat()
    spec = ReachSpec(goal=(x >= 31.0), max_jumps=2, time_bound=3.0)
    checker = BMCChecker(h, _OPTS)
    result = benchmark(lambda: checker.check(spec))
    assert result.status is BMCStatus.UNSAT
