"""Cached vs. uncached batch throughput of the job-oriented engine.

Expands the catalog entry ``sir-outbreak`` into a seed-replicated
:class:`repro.scenarios.ScenarioSweep`, submits it twice through the
process backend of one cache-enabled :class:`repro.api.Engine`, and
reports scenarios/sec for the cold (uncached) and warm (cache-served)
passes, plus the cache counters proving the second pass never re-ran a
task.

CI runs this in ``--quick`` mode and uploads the JSON as the
``BENCH_batch_throughput.json`` artifact::

    python benchmarks/batch_throughput.py --quick --out BENCH_batch_throughput.json
"""

from __future__ import annotations

import argparse
import json
import time


def scenarios(n: int, epsilon: float) -> list:
    """n replicas of the catalog's SIR outbreak entry (seed-varied)."""
    from repro.scenarios import ScenarioSweep

    sweep = ScenarioSweep(
        "sir-outbreak", grid={"epsilon": [epsilon]}, seeds=list(range(n))
    )
    return sweep.expand()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small batch / loose epsilon (CI smoke mode)")
    parser.add_argument("--scenarios", type=int, default=None,
                        help="batch size (default 8, quick: 4)")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--out", default="BENCH_batch_throughput.json")
    args = parser.parse_args(argv)

    from repro.api import Engine

    n = args.scenarios or (4 if args.quick else 8)
    epsilon = 0.25 if args.quick else 0.1
    specs = scenarios(n, epsilon)

    with Engine(workers=args.workers, seed=0, cache=True) as engine:
        t0 = time.perf_counter()
        first = engine.run_batch(specs, backend="process")
        uncached_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        second = engine.run_batch(specs, backend="process")
        cached_s = time.perf_counter() - t0

        stats = engine.cache.stats()

    identical = [a.to_json() for a in first] == [b.to_json() for b in second]
    result = {
        "benchmark": "batch_throughput",
        "mode": "quick" if args.quick else "full",
        "scenarios": n,
        "workers": args.workers,
        "uncached_seconds": round(uncached_s, 4),
        "cached_seconds": round(cached_s, 4),
        "uncached_scenarios_per_s": round(n / uncached_s, 3),
        "cached_scenarios_per_s": round(n / cached_s, 3),
        "speedup": round(uncached_s / cached_s, 1) if cached_s > 0 else None,
        "cache": stats,
        "reports_byte_identical": identical,
        "all_ok": all(r.ok for r in first + second),
    }
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(result, fh, indent=2)
    print(json.dumps(result, indent=2))

    if not identical or not result["all_ok"] or stats["hits"] < n:
        print("FAIL: cached pass did not reproduce the uncached batch")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
